//! Property test pinning the struct-of-arrays contract: stepping an N-lane
//! [`CellBank`] through the batched kernel is *bit-identical* to stepping N
//! independent [`JartDevice`]s, for any mix of states, crosstalk imports,
//! voltages and step lengths. This is what lets the batched crossbar engine
//! share one integration routine with the scalar engine.

use proptest::prelude::*;
use rram_jart::kernel::{step_lane, step_lanes, step_lanes_threaded, CellBank, LANE_CHUNK};
use rram_jart::{DeviceParams, JartDevice};
use rram_units::{Kelvin, Seconds, Volts};

/// A per-lane parameter set scaled from the nominal one: the kind of
/// heterogeneity a Monte Carlo variability campaign installs.
fn spread_params(radius_scale: f64, disc_scale: f64) -> DeviceParams {
    let nominal = DeviceParams::default();
    DeviceParams {
        filament_radius: radius_scale * nominal.filament_radius,
        l_disc: disc_scale * nominal.l_disc,
        ..nominal
    }
}

/// Per-lane proptest input: (initial state, crosstalk ΔT, cell voltage,
/// force-exact-zero flag). The flag grounds the lane *exactly* often enough
/// to exercise the chunked kernel's all-zero fast path, both as whole zero
/// chunks and as zero lanes mixed into active chunks.
type LaneInput = (f64, f64, f64, bool);

/// A fully populated bank from proptest lane inputs, plus the resolved
/// voltage vector.
fn bank_of(lanes: &[LaneInput], table: Option<&[DeviceParams]>) -> (CellBank, Vec<f64>) {
    let nominal = DeviceParams::default();
    let mut bank = CellBank::new(lanes.len(), &nominal);
    let mut voltages = Vec::with_capacity(lanes.len());
    for (lane, &(state, delta, voltage, grounded)) in lanes.iter().enumerate() {
        let params = table.map_or(&nominal, |t| &t[lane]);
        let n = params.n_min + state * (params.n_max - params.n_min);
        bank.force_concentration(lane, n, params);
        bank.set_crosstalk(lane, delta);
        voltages.push(if grounded { 0.0 } else { voltage });
    }
    (bank, voltages)
}

/// Bitwise equality over every state lane of two banks.
fn assert_banks_identical(a: &CellBank, b: &CellBank) -> Result<(), TestCaseError> {
    for lane in 0..a.lanes() {
        prop_assert_eq!(
            a.concentrations()[lane].to_bits(),
            b.concentrations()[lane].to_bits(),
            "lane {} concentration: {} vs {}",
            lane,
            a.concentrations()[lane],
            b.concentrations()[lane]
        );
        prop_assert_eq!(
            a.temperatures()[lane].to_bits(),
            b.temperatures()[lane].to_bits()
        );
        prop_assert_eq!(
            a.stress_times()[lane].to_bits(),
            b.stress_times()[lane].to_bits()
        );
        prop_assert_eq!(a.charges()[lane].to_bits(), b.charges()[lane].to_bits());
        prop_assert_eq!(a.digital()[lane], b.digital()[lane]);
    }
    Ok(())
}

proptest! {
    #[test]
    fn step_lanes_is_bit_identical_to_independent_devices(
        // One (initial normalised state, crosstalk ΔT, cell voltage) per lane.
        lanes in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..80.0, -1.5f64..1.5),
            1..10,
        ),
        // A shared sequence of step lengths, spanning idle to switching.
        steps in prop::collection::vec(1e-10f64..5e-7, 1..5),
    ) {
        let params = DeviceParams::default();
        let mut bank = CellBank::new(lanes.len(), &params);
        let mut devices: Vec<JartDevice> = Vec::with_capacity(lanes.len());
        let mut voltages: Vec<f64> = Vec::with_capacity(lanes.len());
        for (lane, &(state, delta, voltage)) in lanes.iter().enumerate() {
            let n = params.n_min + state * (params.n_max - params.n_min);
            bank.force_concentration(lane, n, &params);
            bank.set_crosstalk(lane, delta);
            let mut device = JartDevice::new(params.clone());
            device.force_concentration(n);
            device.set_crosstalk_delta(Kelvin(delta));
            devices.push(device);
            voltages.push(voltage);
        }

        for &dt in &steps {
            step_lanes(&params, &voltages, &mut bank.view_mut(), Seconds(dt));
            for (lane, device) in devices.iter_mut().enumerate() {
                device.step(Volts(voltages[lane]), Seconds(dt));
            }
            for (lane, device) in devices.iter().enumerate() {
                prop_assert_eq!(
                    bank.concentrations()[lane].to_bits(),
                    device.concentration().to_bits(),
                    "lane {} concentration: {} vs {}",
                    lane, bank.concentrations()[lane], device.concentration()
                );
                prop_assert_eq!(
                    bank.temperatures()[lane].to_bits(),
                    device.temperature().0.to_bits()
                );
                prop_assert_eq!(
                    bank.stress_times()[lane].to_bits(),
                    device.stress_time().0.to_bits()
                );
                prop_assert_eq!(
                    bank.charges()[lane].to_bits(),
                    device.conduction_charge().0.to_bits()
                );
                prop_assert_eq!(bank.digital()[lane], device.digital_state());
            }
        }
    }

    /// The same identity under device-to-device spreads: stepping a bank
    /// with a per-lane parameter table is bit-identical to stepping each
    /// lane as an independent `JartDevice` built from its table entry.
    #[test]
    fn per_lane_params_keep_the_bank_bit_identical_to_devices(
        // One (radius scale, disc-length scale, initial state, ΔT, voltage)
        // per lane: each lane is a different device.
        lanes in prop::collection::vec(
            (0.7f64..1.3, 0.7f64..1.3, 0.0f64..1.0, 0.0f64..80.0, -1.5f64..1.5),
            1..8,
        ),
        steps in prop::collection::vec(1e-10f64..5e-7, 1..4),
    ) {
        let nominal = DeviceParams::default();
        let table: Vec<DeviceParams> = lanes
            .iter()
            .map(|&(radius, disc, ..)| spread_params(radius, disc))
            .collect();
        let mut bank = CellBank::new(lanes.len(), &nominal);
        let mut devices: Vec<JartDevice> = Vec::with_capacity(lanes.len());
        let mut voltages: Vec<f64> = Vec::with_capacity(lanes.len());
        for (lane, &(_, _, state, delta, voltage)) in lanes.iter().enumerate() {
            let params = &table[lane];
            let n = params.n_min + state * (params.n_max - params.n_min);
            bank.force_concentration(lane, n, params);
            bank.set_crosstalk(lane, delta);
            let mut device = JartDevice::new(params.clone());
            device.force_concentration(n);
            device.set_crosstalk_delta(Kelvin(delta));
            devices.push(device);
            voltages.push(voltage);
        }

        for &dt in &steps {
            step_lanes(&table[..], &voltages, &mut bank.view_mut(), Seconds(dt));
            for (lane, device) in devices.iter_mut().enumerate() {
                device.step(Volts(voltages[lane]), Seconds(dt));
            }
            for (lane, device) in devices.iter().enumerate() {
                prop_assert_eq!(
                    bank.concentrations()[lane].to_bits(),
                    device.concentration().to_bits(),
                    "lane {} concentration under spreads: {} vs {}",
                    lane, bank.concentrations()[lane], device.concentration()
                );
                prop_assert_eq!(
                    bank.temperatures()[lane].to_bits(),
                    device.temperature().0.to_bits()
                );
                prop_assert_eq!(
                    bank.charges()[lane].to_bits(),
                    device.conduction_charge().0.to_bits()
                );
                prop_assert_eq!(bank.digital()[lane], device.digital_state());
            }
        }
    }

    /// The chunked `step_lanes` (fixed-width `LANE_CHUNK` blocks with an
    /// all-zero fast path, plus a scalar remainder loop) is bit-identical
    /// to stepping every lane through the per-lane `step_lane` reference —
    /// for lane counts spanning several chunks and every remainder length,
    /// with exact-zero voltages mixed into active chunks, and with zero and
    /// nonzero crosstalk.
    #[test]
    fn chunked_step_lanes_matches_the_per_lane_reference(
        lanes in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..80.0, -1.5f64..1.5, any::<bool>()),
            1..(5 * LANE_CHUNK),
        ),
        steps in prop::collection::vec(1e-10f64..5e-7, 1..4),
    ) {
        let params = DeviceParams::default();
        let (mut chunked, voltages) = bank_of(&lanes, None);
        let mut reference = chunked.clone();

        for &dt in &steps {
            step_lanes(&params, &voltages, &mut chunked.view_mut(), Seconds(dt));
            for (lane, &v_cell) in voltages.iter().enumerate() {
                step_lane(&params, &mut reference.view_mut(), lane, v_cell, Seconds(dt));
            }
            assert_banks_identical(&chunked, &reference)?;
        }
    }

    /// The same chunk-vs-reference identity under a per-lane parameter
    /// table: chunk boundaries must narrow the table consistently with the
    /// per-lane lookup.
    #[test]
    fn chunked_step_lanes_matches_the_reference_under_spreads(
        lanes in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..80.0, -1.5f64..1.5, any::<bool>()),
            1..(3 * LANE_CHUNK),
        ),
        scales in prop::collection::vec(
            (0.7f64..1.3, 0.7f64..1.3),
            (3 * LANE_CHUNK)..(3 * LANE_CHUNK + 1),
        ),
        dt in 1e-10f64..5e-7,
    ) {
        let table: Vec<DeviceParams> = scales[..lanes.len()]
            .iter()
            .map(|&(radius, disc)| spread_params(radius, disc))
            .collect();
        let (mut chunked, voltages) = bank_of(&lanes, Some(&table));
        let mut reference = chunked.clone();

        step_lanes(&table[..], &voltages, &mut chunked.view_mut(), Seconds(dt));
        for (lane, &v_cell) in voltages.iter().enumerate() {
            step_lane(&table[lane], &mut reference.view_mut(), lane, v_cell, Seconds(dt));
        }
        assert_banks_identical(&chunked, &reference)?;
    }

    /// Splitting one sub-step's lane range across scoped worker threads is
    /// bit-identical to the single-threaded kernel for any thread count
    /// 1–8 and any lane count (lanes are independent within a sub-step, so
    /// only the partitioning could go wrong — this pins it), under shared
    /// and per-lane parameters alike.
    #[test]
    fn threaded_step_lanes_is_bit_identical_for_any_thread_count(
        lanes in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..80.0, -1.5f64..1.5, any::<bool>()),
            1..(5 * LANE_CHUNK),
        ),
        scales in prop::collection::vec(
            (0.7f64..1.3, 0.7f64..1.3),
            (5 * LANE_CHUNK)..(5 * LANE_CHUNK + 1),
        ),
        threads in 1usize..9,
        per_lane in any::<bool>(),
        dt in 1e-10f64..5e-7,
    ) {
        let nominal = DeviceParams::default();
        let table: Vec<DeviceParams> = scales[..lanes.len()]
            .iter()
            .map(|&(radius, disc)| spread_params(radius, disc))
            .collect();
        let params_table = per_lane.then_some(&table[..]);
        let (mut threaded, voltages) = bank_of(&lanes, params_table);
        let mut reference = threaded.clone();

        match params_table {
            Some(table) => {
                step_lanes_threaded(table, &voltages, threaded.view_mut(), Seconds(dt), threads);
                step_lanes(table, &voltages, &mut reference.view_mut(), Seconds(dt));
            }
            None => {
                step_lanes_threaded(&nominal, &voltages, threaded.view_mut(), Seconds(dt), threads);
                step_lanes(&nominal, &voltages, &mut reference.view_mut(), Seconds(dt));
            }
        }
        assert_banks_identical(&threaded, &reference)?;
    }
}
