//! Property test pinning the struct-of-arrays contract: stepping an N-lane
//! [`CellBank`] through the batched kernel is *bit-identical* to stepping N
//! independent [`JartDevice`]s, for any mix of states, crosstalk imports,
//! voltages and step lengths. This is what lets the batched crossbar engine
//! share one integration routine with the scalar engine.

use proptest::prelude::*;
use rram_jart::kernel::{step_lanes, CellBank};
use rram_jart::{DeviceParams, JartDevice};
use rram_units::{Kelvin, Seconds, Volts};

/// A per-lane parameter set scaled from the nominal one: the kind of
/// heterogeneity a Monte Carlo variability campaign installs.
fn spread_params(radius_scale: f64, disc_scale: f64) -> DeviceParams {
    let nominal = DeviceParams::default();
    DeviceParams {
        filament_radius: radius_scale * nominal.filament_radius,
        l_disc: disc_scale * nominal.l_disc,
        ..nominal
    }
}

proptest! {
    #[test]
    fn step_lanes_is_bit_identical_to_independent_devices(
        // One (initial normalised state, crosstalk ΔT, cell voltage) per lane.
        lanes in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..80.0, -1.5f64..1.5),
            1..10,
        ),
        // A shared sequence of step lengths, spanning idle to switching.
        steps in prop::collection::vec(1e-10f64..5e-7, 1..5),
    ) {
        let params = DeviceParams::default();
        let mut bank = CellBank::new(lanes.len(), &params);
        let mut devices: Vec<JartDevice> = Vec::with_capacity(lanes.len());
        let mut voltages: Vec<f64> = Vec::with_capacity(lanes.len());
        for (lane, &(state, delta, voltage)) in lanes.iter().enumerate() {
            let n = params.n_min + state * (params.n_max - params.n_min);
            bank.force_concentration(lane, n, &params);
            bank.set_crosstalk(lane, delta);
            let mut device = JartDevice::new(params.clone());
            device.force_concentration(n);
            device.set_crosstalk_delta(Kelvin(delta));
            devices.push(device);
            voltages.push(voltage);
        }

        for &dt in &steps {
            step_lanes(&params, &voltages, &mut bank.view_mut(), Seconds(dt));
            for (lane, device) in devices.iter_mut().enumerate() {
                device.step(Volts(voltages[lane]), Seconds(dt));
            }
            for (lane, device) in devices.iter().enumerate() {
                prop_assert_eq!(
                    bank.concentrations()[lane].to_bits(),
                    device.concentration().to_bits(),
                    "lane {} concentration: {} vs {}",
                    lane, bank.concentrations()[lane], device.concentration()
                );
                prop_assert_eq!(
                    bank.temperatures()[lane].to_bits(),
                    device.temperature().0.to_bits()
                );
                prop_assert_eq!(
                    bank.stress_times()[lane].to_bits(),
                    device.stress_time().0.to_bits()
                );
                prop_assert_eq!(
                    bank.charges()[lane].to_bits(),
                    device.conduction_charge().0.to_bits()
                );
                prop_assert_eq!(bank.digital()[lane], device.digital_state());
            }
        }
    }

    /// The same identity under device-to-device spreads: stepping a bank
    /// with a per-lane parameter table is bit-identical to stepping each
    /// lane as an independent `JartDevice` built from its table entry.
    #[test]
    fn per_lane_params_keep_the_bank_bit_identical_to_devices(
        // One (radius scale, disc-length scale, initial state, ΔT, voltage)
        // per lane: each lane is a different device.
        lanes in prop::collection::vec(
            (0.7f64..1.3, 0.7f64..1.3, 0.0f64..1.0, 0.0f64..80.0, -1.5f64..1.5),
            1..8,
        ),
        steps in prop::collection::vec(1e-10f64..5e-7, 1..4),
    ) {
        let nominal = DeviceParams::default();
        let table: Vec<DeviceParams> = lanes
            .iter()
            .map(|&(radius, disc, ..)| spread_params(radius, disc))
            .collect();
        let mut bank = CellBank::new(lanes.len(), &nominal);
        let mut devices: Vec<JartDevice> = Vec::with_capacity(lanes.len());
        let mut voltages: Vec<f64> = Vec::with_capacity(lanes.len());
        for (lane, &(_, _, state, delta, voltage)) in lanes.iter().enumerate() {
            let params = &table[lane];
            let n = params.n_min + state * (params.n_max - params.n_min);
            bank.force_concentration(lane, n, params);
            bank.set_crosstalk(lane, delta);
            let mut device = JartDevice::new(params.clone());
            device.force_concentration(n);
            device.set_crosstalk_delta(Kelvin(delta));
            devices.push(device);
            voltages.push(voltage);
        }

        for &dt in &steps {
            step_lanes(&table[..], &voltages, &mut bank.view_mut(), Seconds(dt));
            for (lane, device) in devices.iter_mut().enumerate() {
                device.step(Volts(voltages[lane]), Seconds(dt));
            }
            for (lane, device) in devices.iter().enumerate() {
                prop_assert_eq!(
                    bank.concentrations()[lane].to_bits(),
                    device.concentration().to_bits(),
                    "lane {} concentration under spreads: {} vs {}",
                    lane, bank.concentrations()[lane], device.concentration()
                );
                prop_assert_eq!(
                    bank.temperatures()[lane].to_bits(),
                    device.temperature().0.to_bits()
                );
                prop_assert_eq!(
                    bank.charges()[lane].to_bits(),
                    device.conduction_charge().0.to_bits()
                );
                prop_assert_eq!(bank.digital()[lane], device.digital_state());
            }
        }
    }
}
