//! Calibration sweep used to pick the default kinetic parameters.
//!
//! Prints, for a grid of (activation energy, attempt frequency) pairs, the
//! three characteristic times that define the NeuroHammer operating regime
//! (see DESIGN.md): nominal SET, half-select disturb at ambient, and
//! half-select disturb with a Fig. 2a-like 55 K crosstalk temperature.
//!
//! Run with `cargo run -p rram-jart --release --example calibrate_sweep`.

use rram_jart::calibration::{calibrate, SwitchingTime};
use rram_jart::DeviceParams;

fn fmt(t: SwitchingTime) -> String {
    match t {
        SwitchingTime::Switched(s) => format!("{:.3e} s", s.0),
        SwitchingTime::NotSwitchedWithin(b) => format!("> {:.1e} s", b.0),
    }
}

fn main() {
    println!(
        "{:>6} {:>9} | {:>12} {:>12} {:>12} | {:>8} {:>8}",
        "Ea", "nu0", "SET@1.05V", "V/2@300K", "V/2 +55K", "T_fil", "ratio"
    );
    for &ea in &[1.05, 1.15, 1.25, 1.35, 1.45] {
        for &nu0 in &[1e11, 1e12, 1e13, 1e14, 1e15, 1e16] {
            let params = DeviceParams::builder()
                .ea_set(ea)
                .attempt_frequency(nu0)
                .build()
                .expect("valid params");
            let report = calibrate(&params);
            let ratio = match (
                report.half_select_ambient.time(),
                report.half_select_heated.time(),
            ) {
                (Some(a), Some(h)) => format!("{:.1}", a.0 / h.0),
                (None, Some(_)) => ">big".to_string(),
                _ => "-".to_string(),
            };
            println!(
                "{:>6.2} {:>9.1e} | {:>12} {:>12} {:>12} | {:>7.0}K {:>8}",
                ea,
                nu0,
                fmt(report.nominal_set),
                fmt(report.half_select_ambient),
                fmt(report.half_select_heated),
                report.hammered_filament_temperature.0,
                ratio
            );
        }
    }
}
