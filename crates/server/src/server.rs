//! The `neurohammer-server` daemon: a TCP accept loop over the pure
//! [`JobQueue`], exposing resource-oriented routes.
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /jobs` | submit `{"spec": {...}, "shards": n}`; validates once |
//! | `GET /jobs` | list job snapshots |
//! | `GET /jobs/{id}` | one job snapshot |
//! | `GET /jobs/{id}/report` | merged report JSON (partial while running) |
//! | `GET /jobs/{id}/report.csv` | the same report as CSV |
//! | `GET /jobs/{id}/trace` | the job's span timeline as JSONL |
//! | `DELETE /jobs/{id}` | drop a job; its workers quiesce |
//! | `POST /lease` | worker asks for a shard; grants carry `x-nh-trace` |
//! | `POST /heartbeat` | worker renews its lease |
//! | `POST /results` | worker streams one [`CampaignEvent`] |
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus text exposition of the telemetry registry |
//! | `GET /metrics/history` | sampled metric history as JSONL (`?family=` filters) |
//! | `GET /fleet` | self-contained HTML fleet overview |
//! | `GET /jobs/{id}/events` | chunked JSONL event stream: replay, then live |
//!
//! `GET /jobs/{id}/events` holds the connection open with
//! `Transfer-Encoding: chunked`: it first replays every
//! [`CampaignEvent`] the job has recorded (one
//! [`to_json_line`](neurohammer::campaign::CampaignEvent::to_json_line)
//! per line), then appends events live as workers fold outcomes in, and
//! terminates the stream once the job's `Finished` event lands. A client
//! connecting mid-run therefore reconstructs exactly the event sequence
//! an unsharded local run emits. Disconnecting early is fine — the
//! writer notices the broken pipe and the handler thread exits.
//!
//! `GET /jobs/{id}/report` responds with
//! [`CampaignReport::to_json`](neurohammer::campaign::CampaignReport::to_json)
//! plus a trailing newline — the exact bytes a figure binary prints under
//! `--json` — so `curl | diff` against an unsharded run is empty when the
//! job is complete.
//!
//! `GET /jobs/{id}/trace` responds with one
//! [`SpanRecord`](rram_telemetry::trace::SpanRecord) JSON object per line
//! in allocation order: the root `job` span, the `submit` instant, one
//! `lease` span per grant (reassignments and speculative copies appear as
//! additional lease spans), one `compute` span per folded point (its
//! length reconstructed from the outcome's `wall_ns`), a `fold` instant
//! per compute, and a closing `finish` instant.
//!
//! A background sampler snapshots the telemetry registry every
//! [`ServerOptions::history_interval`] into a bounded in-memory ring
//! (served by `GET /metrics/history`) and, when
//! [`ServerOptions::history_path`] is set, mirrors it to a ring-compacted
//! JSONL file next to the checkpoints.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use neurohammer::campaign::json::Json;
use neurohammer::campaign::{CampaignEvent, CampaignSpec, Shard};
use rram_telemetry::history::{HistoryWriter, MetricHistory, MetricSample};
use rram_telemetry::trace::{TraceContext, TRACE_HEADER};

use crate::http::{
    finish_chunked, read_request, write_chunk, write_chunked_head, write_response,
    write_response_with, Request,
};
use crate::jobs::{JobQueue, JobStatus, LeaseOffer, QueueError, ShardState, StragglerPolicy};
use crate::ServiceError;

/// Construction-time knobs for [`Server::bind_with`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// How long a worker lease lasts without renewal.
    pub lease: Duration,
    /// Straggler detection and speculative re-leasing policy.
    pub straggler: StragglerPolicy,
    /// Where to mirror the metric history (`None`: in-memory only).
    pub history_path: Option<PathBuf>,
    /// How often the sampler snapshots the registry.
    pub history_interval: Duration,
    /// How many samples the history ring retains.
    pub history_cap: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            lease: Duration::from_secs(30),
            straggler: StragglerPolicy::default(),
            history_path: None,
            history_interval: Duration::from_secs(1),
            history_cap: 512,
        }
    }
}

/// The shared per-daemon state behind the connection handlers.
struct ServerState {
    queue: Mutex<JobQueue>,
    history: Mutex<MetricHistory>,
    started: Instant,
}

/// A bound, not-yet-serving campaign service.
///
/// # Examples
///
/// Bind to an ephemeral loopback port, serve in the background, probe it:
///
/// ```
/// use std::time::Duration;
/// use rram_server::{http, Server};
///
/// let server = Server::bind("127.0.0.1:0", Duration::from_secs(30)).unwrap();
/// let addr = server.local_addr();
/// let handle = server.spawn();
/// let (status, body) = http::call(addr, "GET", "/healthz", None).unwrap();
/// assert_eq!(status, 200);
/// assert!(body.contains("\"ok\":true"));
/// handle.shutdown();
/// ```
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    options: ServerOptions,
}

/// A background campaign service, stoppable from the spawning thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the service to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) with the given worker-lease duration and default
    /// [`ServerOptions`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns the socket error when the address cannot be bound.
    pub fn bind(addr: &str, lease: Duration) -> std::io::Result<Server> {
        Server::bind_with(
            addr,
            ServerOptions {
                lease,
                ..ServerOptions::default()
            },
        )
    }

    /// Binds the service with explicit [`ServerOptions`].
    ///
    /// # Errors
    ///
    /// Returns the socket error when the address cannot be bound.
    pub fn bind_with(addr: &str, options: ServerOptions) -> std::io::Result<Server> {
        let mut queue = JobQueue::new(options.lease);
        queue.set_straggler_policy(options.straggler);
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(ServerState {
                queue: Mutex::new(queue),
                history: Mutex::new(MetricHistory::new(options.history_cap)),
                started: Instant::now(),
            }),
            options,
        })
    }

    /// The bound address — the port to hand to workers and `curl`.
    ///
    /// # Panics
    ///
    /// Panics if the socket's address cannot be read (the listener is
    /// already bound, so this does not happen in practice).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Serves until `stop` is set (checked between connections — poke the
    /// port after setting it, as [`ServerHandle::shutdown`] does). The
    /// metric sampler runs alongside the accept loop and is joined before
    /// this returns.
    pub fn serve(self, stop: &AtomicBool) {
        let sampler_stop = Arc::new(AtomicBool::new(false));
        let sampler = spawn_sampler(
            Arc::clone(&self.state),
            self.options.clone(),
            Arc::clone(&sampler_stop),
        );
        for connection in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = connection else { continue };
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(stream, &state));
        }
        sampler_stop.store(true, Ordering::SeqCst);
        let _ = sampler.join();
    }

    /// Serves forever — the daemon binary's main loop.
    pub fn run(self) {
        self.serve(&AtomicBool::new(false));
    }

    /// Moves the accept loop onto a background thread.
    pub fn spawn(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.local_addr();
        let thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || self.serve(&stop)
        });
        ServerHandle {
            addr,
            stop,
            thread: Some(thread),
        }
    }
}

/// Starts the background metric sampler: every `history_interval` it
/// snapshots the global registry into the state's history ring (and the
/// JSONL mirror when configured). Timestamps are monotonic milliseconds
/// since the sampler started, forced strictly increasing.
fn spawn_sampler(
    state: Arc<ServerState>,
    options: ServerOptions,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut writer = options.history_path.as_ref().map(HistoryWriter::new);
        let interval = options.history_interval.max(Duration::from_millis(10));
        let origin = Instant::now();
        let mut next = origin + interval;
        let mut last_t = 0u64;
        while !stop.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= next {
                next = now + interval;
                let t_ms = (now.duration_since(origin).as_millis() as u64).max(last_t + 1);
                last_t = t_ms;
                let sample = MetricSample {
                    t_ms,
                    values: rram_telemetry::Registry::global().sample(),
                };
                let mut history = state.history.lock().expect("history poisoned");
                history.push(sample.clone());
                if let Some(writer) = writer.as_mut() {
                    if let Err(error) = writer.append(&sample, &history) {
                        eprintln!(
                            "{{\"warn\":\"history\",\"error\":\"{}\"}}",
                            error.to_string().replace('"', "'")
                        );
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    })
}

impl ServerHandle {
    /// The served address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread.
    ///
    /// # Panics
    ///
    /// Panics if the accept-loop thread panicked.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The loop only re-checks the flag on the next connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            thread.join().expect("accept loop panicked");
        }
    }
}

/// One routed response: status, content type, body, extra headers.
struct Routed {
    status: u16,
    content_type: &'static str,
    body: String,
    headers: Vec<(String, String)>,
}

impl Routed {
    fn new(status: u16, content_type: &'static str, body: String) -> Routed {
        Routed {
            status,
            content_type,
            body,
            headers: Vec::new(),
        }
    }
}

fn json_body(status: u16, value: Json) -> Routed {
    Routed::new(status, "application/json", value.to_compact_string())
}

fn error_body(status: u16, message: String) -> Routed {
    json_body(
        status,
        Json::Object(vec![("error".into(), Json::String(message))]),
    )
}

impl From<QueueError> for Routed {
    fn from(error: QueueError) -> Routed {
        let status = match &error {
            QueueError::UnknownJob(_) => 404,
            QueueError::UnknownShard { .. } => 400,
            QueueError::ForeignOutcome(_) => 409,
            QueueError::Invalid(_) => 400,
        };
        error_body(status, error.to_string())
    }
}

fn status_to_json(status: &JobStatus) -> Json {
    Json::Object(vec![
        ("id".into(), Json::Number(status.id as f64)),
        ("name".into(), Json::String(status.name.clone())),
        (
            "state".into(),
            Json::String(status.state.label().to_string()),
        ),
        (
            "points_done".into(),
            Json::Number(status.points_done as f64),
        ),
        (
            "points_total".into(),
            Json::Number(status.points_total as f64),
        ),
        ("stragglers".into(), Json::Number(status.stragglers as f64)),
        (
            "shards".into(),
            Json::Array(
                status
                    .shards
                    .iter()
                    .enumerate()
                    .map(|(index, state)| {
                        let shard = Shard {
                            index,
                            of: status.shards.len(),
                        };
                        let mut entries = vec![("shard".into(), Json::String(shard.to_string()))];
                        let label = match state {
                            ShardState::Pending => "pending",
                            ShardState::Leased(worker) => {
                                entries.push(("worker".into(), Json::String(worker.clone())));
                                "leased"
                            }
                            ShardState::Done => "done",
                        };
                        entries.push(("state".into(), Json::String(label.into())));
                        Json::Object(entries)
                    })
                    .collect(),
            ),
        ),
    ])
}

fn required_u64(value: &Json, key: &str) -> Result<u64, Routed> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| error_body(400, format!("key {key:?} must be an integer")))
}

fn required_str<'a>(value: &'a Json, key: &str) -> Result<&'a str, Routed> {
    value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| error_body(400, format!("key {key:?} must be a string")))
}

fn parse_body(body: &str) -> Result<Json, Routed> {
    Json::parse(body).map_err(|e| error_body(400, format!("malformed JSON body: {e}")))
}

/// Parses the `{"worker", "job", "shard"}` triple shared by the worker
/// endpoints.
fn worker_triple(body: &Json) -> Result<(String, u64, Shard), Routed> {
    let worker = required_str(body, "worker")?.to_string();
    let job = required_u64(body, "job")?;
    let shard = Shard::parse(required_str(body, "shard")?)
        .map_err(|e| error_body(400, format!("key \"shard\": {e}")))?;
    Ok((worker, job, shard))
}

fn route(request: &Request, state: &ServerState) -> Routed {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let now = Instant::now();
    // The two history/fleet reads snapshot under their own locks before
    // any queue work, keeping lock scopes disjoint and short.
    if request.method == "GET" && segments.as_slice() == ["metrics", "history"] {
        let history = state.history.lock().expect("history poisoned");
        return Routed::new(
            200,
            "application/jsonl",
            history.jsonl(request.query_param("family")),
        );
    }
    if request.method == "GET" && segments.as_slice() == ["fleet"] {
        let history = state.history.lock().expect("history poisoned").clone();
        let queue = state.queue.lock().expect("job queue poisoned");
        let page = crate::fleet::fleet_page(
            &queue.list(),
            &queue.fleet(now),
            &history,
            state.started.elapsed(),
        );
        return Routed::new(200, "text/html; charset=utf-8", page);
    }
    let queue = &mut *state.queue.lock().expect("job queue poisoned");
    let outcome = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["metrics"]) => Ok(Routed::new(
            200,
            "text/plain; version=0.0.4",
            rram_telemetry::Registry::global().prometheus_text(),
        )),
        ("GET", ["healthz"]) => Ok(json_body(
            200,
            Json::Object(vec![
                ("ok".into(), Json::Bool(true)),
                ("jobs".into(), Json::Number(queue.list().len() as f64)),
            ]),
        )),
        ("POST", ["jobs"]) => parse_body(&request.body).and_then(|body| {
            let spec = body
                .get("spec")
                .ok_or_else(|| error_body(400, "key \"spec\" is required".into()))
                .and_then(|spec| {
                    CampaignSpec::from_json_value(spec)
                        .map_err(|e| error_body(400, format!("invalid spec: {e}")))
                })?;
            let shards = match body.get("shards") {
                None => 1,
                Some(_) => required_u64(&body, "shards")? as usize,
            };
            let status = queue.submit(spec, shards, now).map_err(Routed::from)?;
            Ok(json_body(201, status_to_json(&status)))
        }),
        ("GET", ["jobs"]) => Ok(json_body(
            200,
            Json::Object(vec![(
                "jobs".into(),
                Json::Array(queue.list().iter().map(status_to_json).collect()),
            )]),
        )),
        ("GET", ["jobs", id]) => parse_id(id).and_then(|id| {
            let status = queue.status(id).map_err(Routed::from)?;
            Ok(json_body(200, status_to_json(&status)))
        }),
        ("DELETE", ["jobs", id]) => parse_id(id).and_then(|id| {
            queue.delete(id).map_err(Routed::from)?;
            Ok(json_body(
                200,
                Json::Object(vec![("deleted".into(), Json::Number(id as f64))]),
            ))
        }),
        ("GET", ["jobs", id, "report"]) => parse_id(id).and_then(|id| {
            let report = queue.report(id).map_err(Routed::from)?;
            // The figure binaries' exact `--json` bytes (plus newline).
            Ok(Routed::new(
                200,
                "application/json",
                format!("{}\n", report.to_json()),
            ))
        }),
        ("GET", ["jobs", id, "report.csv"]) => parse_id(id).and_then(|id| {
            let report = queue.report(id).map_err(Routed::from)?;
            Ok(Routed::new(200, "text/csv", report.to_csv_string()))
        }),
        ("GET", ["jobs", id, "trace"]) => parse_id(id).and_then(|id| {
            let trace = queue.trace_jsonl(id).map_err(Routed::from)?;
            Ok(Routed::new(200, "application/jsonl", trace))
        }),
        ("POST", ["lease"]) => parse_body(&request.body).and_then(|body| {
            let worker = required_str(&body, "worker")?;
            let offer = queue.lease(worker, now);
            let trace = match &offer {
                LeaseOffer::Grant(grant) => grant.trace.map(|ctx| ctx.header_value()),
                LeaseOffer::Idle { .. } => None,
            };
            let mut routed = json_body(200, offer_to_json(offer));
            if let Some(value) = trace {
                routed.headers.push((TRACE_HEADER.to_string(), value));
            }
            Ok(routed)
        }),
        ("POST", ["heartbeat"]) => parse_body(&request.body).and_then(|body| {
            let (worker, job, shard) = worker_triple(&body)?;
            let held = queue
                .heartbeat(&worker, job, shard, now)
                .map_err(Routed::from)?;
            Ok(json_body(
                200,
                Json::Object(vec![("held".into(), Json::Bool(held))]),
            ))
        }),
        ("POST", ["results"]) => parse_body(&request.body).and_then(|body| {
            let (worker, job, shard) = worker_triple(&body)?;
            let event = body
                .get("event")
                .ok_or_else(|| error_body(400, "key \"event\" is required".into()))
                .and_then(|event| {
                    CampaignEvent::from_json_value(event)
                        .map_err(|e| error_body(400, format!("invalid event: {e}")))
                })?;
            let ctx = request.header(TRACE_HEADER).and_then(TraceContext::parse);
            let ack = queue
                .record(&worker, job, shard, &event, ctx, now)
                .map_err(Routed::from)?;
            Ok(json_body(
                200,
                Json::Object(vec![
                    ("accepted".into(), Json::Bool(ack.accepted)),
                    ("held".into(), Json::Bool(ack.held)),
                    ("shard_done".into(), Json::Bool(ack.shard_done)),
                    ("job_done".into(), Json::Bool(ack.job_done)),
                ]),
            ))
        }),
        (
            _,
            ["jobs", ..]
            | ["lease"]
            | ["heartbeat"]
            | ["results"]
            | ["healthz"]
            | ["metrics", ..]
            | ["fleet"],
        ) => Err(error_body(
            405,
            format!("{} not allowed here", request.method),
        )),
        _ => Err(error_body(404, format!("no route {:?}", request.path))),
    };
    outcome.unwrap_or_else(|routed| routed)
}

fn parse_id(text: &str) -> Result<u64, Routed> {
    text.parse()
        .map_err(|_| error_body(404, format!("job ids are integers, got {text:?}")))
}

fn offer_to_json(offer: LeaseOffer) -> Json {
    match offer {
        LeaseOffer::Idle { outstanding } => Json::Object(vec![
            ("idle".into(), Json::Bool(true)),
            ("outstanding".into(), Json::Number(outstanding as f64)),
        ]),
        LeaseOffer::Grant(grant) => {
            let mut entries = vec![
                ("job".into(), Json::Number(grant.job as f64)),
                ("shard".into(), Json::String(grant.shard.to_string())),
                (
                    "lease_ms".into(),
                    Json::Number(grant.lease.as_millis() as f64),
                ),
                ("speculative".into(), Json::Bool(grant.speculative)),
            ];
            if let Some(ctx) = grant.trace {
                entries.push(("trace".into(), Json::String(ctx.header_value())));
            }
            entries.push(("spec".into(), grant.spec.to_json_value()));
            entries.push((
                "resume".into(),
                Json::Array(
                    grant
                        .resume
                        .iter()
                        .map(|outcome| outcome.to_json_value())
                        .collect(),
                ),
            ));
            Json::Object(entries)
        }
    }
}

/// `GET /jobs/{id}/events` → the job id, if the request matches.
fn event_stream_target(request: &Request) -> Option<u64> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["jobs", id, "events"]) => id.parse().ok(),
        _ => None,
    }
}

/// Streams a job's event log as chunked JSONL: recorded history first,
/// then live events as the queue folds them in, terminating once the
/// job's `Finished` event lands. The queue lock is held only for the
/// cursor snapshot, never across a socket write, so a slow or vanished
/// client cannot wedge the service. Write failures (client disconnect)
/// simply end the handler.
fn stream_job_events(stream: &mut TcpStream, state: &Mutex<JobQueue>, job: u64) {
    // Validate the job id before committing to a chunked response.
    let known = {
        let queue = state.lock().expect("job queue poisoned");
        queue.events_from(job, 0).is_ok()
    };
    if !known {
        let routed = Routed::from(QueueError::UnknownJob(job));
        let _ = write_response(stream, routed.status, routed.content_type, &routed.body);
        return;
    }
    if write_chunked_head(stream, 200, "application/jsonl").is_err() {
        return;
    }
    let mut cursor = 0usize;
    loop {
        let snapshot = {
            let queue = state.lock().expect("job queue poisoned");
            queue.events_from(job, cursor)
        };
        let Ok((fresh, closed)) = snapshot else {
            // Job deleted mid-stream: close out what was sent.
            let _ = finish_chunked(stream);
            return;
        };
        if !fresh.is_empty() {
            cursor += fresh.len();
            let mut batch = String::new();
            for event in &fresh {
                batch.push_str(&event.to_json_line());
                batch.push('\n');
            }
            if write_chunk(stream, &batch).is_err() {
                return;
            }
        }
        if closed {
            let _ = finish_chunked(stream);
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    // A stalled or hostile peer must not pin this thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let routed = match read_request(&mut stream) {
        Ok(request) => {
            if let Some(job) = event_stream_target(&request) {
                stream_job_events(&mut stream, &state.queue, job);
                return;
            }
            route(&request, state)
        }
        Err(ServiceError::Protocol(what)) => error_body(400, what),
        Err(_) => return,
    };
    let _ = write_response_with(
        &mut stream,
        routed.status,
        routed.content_type,
        &routed.body,
        &routed.headers,
    );
}
