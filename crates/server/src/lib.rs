//! The campaign service of the NeuroHammer reproduction: a long-running
//! daemon that serves [`CampaignSpec`](neurohammer::campaign::CampaignSpec)
//! grids to a fleet of workers.
//!
//! The one-shot figure binaries shard a grid *statically* (`--shard i/n` +
//! `--merge`); the service does it *dynamically*. [`Server`] listens on a
//! plain [`std::net::TcpListener`] speaking a hand-rolled subset of
//! HTTP/1.1 (no TLS, no keep-alive, `Content-Length` bodies only — the
//! workspace builds without registry dependencies), validates each
//! submitted spec once by constructing a
//! [`CampaignExecutor`](neurohammer::campaign::CampaignExecutor), and
//! leases [`Shard`](neurohammer::campaign::Shard) slices to whichever
//! workers connect. Leases expire unless renewed by heartbeats or result
//! submissions, so a dead or straggling worker's shard is reassigned —
//! together with the outcomes it already streamed back, which the next
//! worker replays through the executor's resume path instead of
//! recomputing. Outcome folding de-duplicates by
//! [`PointKey`](neurohammer::campaign::PointKey) with the same
//! first-wins/conflict-is-an-error semantics as
//! [`CampaignReport::merge`](neurohammer::campaign::CampaignReport), so a
//! revived worker double-submitting its old shard is harmless by
//! construction, and the merged report is byte-identical to an unsharded
//! run.
//!
//! The pieces:
//!
//! * [`jobs`] — the pure job-queue state machine (no I/O, no clock of its
//!   own: every lease-sensitive method takes an explicit `now`);
//! * [`http`] — the minimal HTTP/1.1 reader/writer and client;
//! * [`server`] — the TCP accept loop and the resource-oriented routes;
//! * [`worker`] — the fleet worker loop (`neurohammer-worker` is a thin
//!   CLI wrapper around [`worker::run_worker`]);
//! * [`cli`] — flag parsing shared by the binaries;
//! * `fleet` (private) — the `GET /fleet` HTML overview renderer.
//!
//! Observability rides the same routes: every lease grant carries a
//! trace context (`x-nh-trace`) the worker echoes back, so
//! `GET /jobs/{id}/trace` serves a submit → lease → compute → fold →
//! finish span timeline; a background sampler persists registry
//! snapshots for `GET /metrics/history`; and straggling shards are
//! flagged from observed per-point wall times (opt-in `--speculate`
//! re-leases them to idle workers — safe because outcome folding is
//! idempotent first-wins).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cli;
mod fleet;
pub mod http;
pub mod jobs;
pub mod server;
pub mod worker;

pub use jobs::{
    EventAck, JobQueue, JobState, JobStatus, LeaseGrant, LeaseOffer, QueueError, ShardState,
    StragglerPolicy, WorkerInfo,
};
pub use server::{Server, ServerHandle, ServerOptions};
pub use worker::{run_worker, ShardRun, WorkerConfig, WorkerSummary};

use neurohammer::campaign::CampaignError;

/// Everything that can go wrong talking to (or serving) the campaign
/// service.
#[derive(Debug)]
pub enum ServiceError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The peer violated the wire protocol (malformed HTTP or JSON, an
    /// unexpected status code, a missing field).
    Protocol(String),
    /// Campaign validation or execution failed.
    Campaign(CampaignError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "socket error: {e}"),
            ServiceError::Protocol(what) => write!(f, "protocol error: {what}"),
            ServiceError::Campaign(e) => write!(f, "campaign error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(error: std::io::Error) -> Self {
        ServiceError::Io(error)
    }
}

impl From<CampaignError> for ServiceError {
    fn from(error: CampaignError) -> Self {
        ServiceError::Campaign(error)
    }
}
