//! The campaign-service daemon.
//!
//! ```text
//! neurohammer-server [--addr 127.0.0.1:7171] [--lease-ms 30000]
//! ```
//!
//! Listens forever, accepting `CampaignSpec` jobs over HTTP and leasing
//! their shards to `neurohammer-worker` fleet members; see the crate
//! documentation of `rram_server` for the protocol.

use std::time::Duration;

use rram_server::cli::{flag_u64, flag_value};
use rram_server::Server;

fn main() {
    let addr = flag_value("--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let lease_ms = flag_u64("--lease-ms").unwrap_or(30_000);
    let server = Server::bind(&addr, Duration::from_millis(lease_ms))
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    eprintln!(
        "neurohammer-server listening on {} (lease {lease_ms} ms)",
        server.local_addr()
    );
    server.run();
}
