//! The campaign-service daemon.
//!
//! ```text
//! neurohammer-server [--addr 127.0.0.1:7171] [--lease-ms 30000]
//!                    [--speculate] [--straggler-multiple 4.0]
//!                    [--straggler-min-samples 3]
//!                    [--history <file.jsonl>] [--history-interval-ms 1000]
//!                    [--history-cap 512]
//! ```
//!
//! Listens forever, accepting `CampaignSpec` jobs over HTTP and leasing
//! their shards to `neurohammer-worker` fleet members; see the crate
//! documentation of `rram_server` for the protocol.
//!
//! Observability knobs:
//!
//! * `--history <file>` mirrors the periodic metric snapshots (always
//!   served from memory at `GET /metrics/history`) to a ring-compacted
//!   JSONL file, e.g. next to the checkpoints;
//! * `--history-interval-ms` / `--history-cap` set the sampling cadence
//!   and the retention window;
//! * `--straggler-multiple` flags a leased shard once it runs longer
//!   than this multiple of its expected duration (median observed
//!   per-point wall time × points in the shard; needs at least
//!   `--straggler-min-samples` observations);
//! * `--speculate` additionally re-leases flagged shards to idle
//!   workers — safe because outcome folding is idempotent first-wins,
//!   so the merged report stays byte-identical either way.

use std::time::Duration;

use rram_server::cli::{flag_f64, flag_present, flag_u64, flag_value};
use rram_server::{Server, ServerOptions, StragglerPolicy};

fn main() {
    let addr = flag_value("--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let lease_ms = flag_u64("--lease-ms").unwrap_or(30_000);
    let defaults = StragglerPolicy::default();
    let options = ServerOptions {
        lease: Duration::from_millis(lease_ms),
        straggler: StragglerPolicy {
            multiple: flag_f64("--straggler-multiple").unwrap_or(defaults.multiple),
            min_samples: flag_u64("--straggler-min-samples")
                .map(|n| n as usize)
                .unwrap_or(defaults.min_samples),
            speculate: flag_present("--speculate"),
        },
        history_path: flag_value("--history").map(Into::into),
        history_interval: Duration::from_millis(flag_u64("--history-interval-ms").unwrap_or(1000)),
        history_cap: flag_u64("--history-cap").unwrap_or(512) as usize,
    };
    let speculate = options.straggler.speculate;
    let server =
        Server::bind_with(&addr, options).unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    eprintln!(
        "neurohammer-server listening on {} (lease {lease_ms} ms{})",
        server.local_addr(),
        if speculate { ", speculation on" } else { "" },
    );
    server.run();
}
