//! A fleet worker for the campaign service.
//!
//! ```text
//! neurohammer-worker [--server 127.0.0.1:7171] [--name w0] [--poll-ms 500]
//!                    [--drain] [--alpha-cache <dir>] [--kill-after <n>]
//!                    [--slow-ms <ms>]
//! ```
//!
//! Leases shards from a `neurohammer-server`, executes them through the
//! shared figure-binary runner, and streams results back. `--drain`
//! exits once the server reports no outstanding jobs (for batch fleets);
//! without it the worker polls forever. `--kill-after <n>` is fault
//! injection for the CI smoke job: the worker falls silent — no results,
//! no heartbeats — after streaming its n-th point, exactly like a
//! `SIGKILL` mid-grid, and exits with status 2. `--slow-ms <ms>` is the
//! straggler fault injection for the speculation smoke job: the worker
//! dawdles that long after each streamed point (while dutifully
//! heartbeating), so the server's straggler detector has something real
//! to flag.

use std::time::Duration;

use rram_server::cli::{flag_present, flag_u64, flag_value};
use rram_server::{run_worker, WorkerConfig};

fn main() {
    let config = WorkerConfig {
        server: flag_value("--server").unwrap_or_else(|| "127.0.0.1:7171".into()),
        name: flag_value("--name").unwrap_or_else(|| format!("worker-{}", std::process::id())),
        poll: Duration::from_millis(flag_u64("--poll-ms").unwrap_or(500)),
        drain: flag_present("--drain"),
        kill_after: flag_u64("--kill-after"),
        slow_point: flag_u64("--slow-ms").map(Duration::from_millis),
        alpha_cache: flag_value("--alpha-cache").map(Into::into),
        progress: true,
    };
    let summary = run_worker(&config).unwrap_or_else(|e| panic!("worker {:?}: {e}", config.name));
    for run in &summary.shards {
        eprintln!(
            "worker {:?}: job {} shard {}: {} executed, {} replayed, completed={}",
            config.name,
            run.job,
            run.shard,
            run.executed.len(),
            run.replayed,
            run.completed
        );
    }
    if summary.killed {
        eprintln!(
            "worker {:?}: killed by --kill-after fault injection",
            config.name
        );
        std::process::exit(2);
    }
}
