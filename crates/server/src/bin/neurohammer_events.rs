//! Follows a campaign job's event stream from a `neurohammer-server`.
//!
//! ```text
//! neurohammer-events --job <id> [--server 127.0.0.1:7171]
//!                    [--tui] [--axis pulse-length]
//! ```
//!
//! Connects to `GET /jobs/{id}/events`: the server first replays every
//! [`CampaignEvent`] the job has recorded so far (one JSON object per
//! line, the checkpoint wire format) and then streams live events as the
//! fleet folds new points, closing the stream when the job finishes. By
//! default each line is echoed verbatim to stdout — pipe it to a file and
//! it *is* a valid checkpoint replay. With `--tui` the same stream drives
//! the live ANSI dashboard the figure binaries render locally, so a
//! sharded fleet run can be watched from any machine that can reach the
//! server; `--axis` picks the sweep axis the dashboard groups series by
//! (default `pulse-length`).

use neurohammer::campaign::{CampaignAxis, CampaignEvent};
use neurohammer_bench::observe::TuiDriver;
use rram_server::cli::{flag_u64, flag_value};
use rram_server::http::stream_lines;

/// Maps the `--axis` flag to a dashboard grouping axis.
fn axis_from_flag() -> CampaignAxis {
    let Some(name) = flag_value("--axis") else {
        return CampaignAxis::PulseLength;
    };
    match name.as_str() {
        "array-size" => CampaignAxis::ArraySize,
        "pattern" => CampaignAxis::Pattern,
        "amplitude" => CampaignAxis::Amplitude,
        "pulse-length" => CampaignAxis::PulseLength,
        "duty-cycle" => CampaignAxis::DutyCycle,
        "spacing" => CampaignAxis::Spacing,
        "ambient" => CampaignAxis::Ambient,
        "scheme" => CampaignAxis::Scheme,
        "guard" => CampaignAxis::Guard,
        "spread" => CampaignAxis::Spread,
        "backend" => CampaignAxis::Backend,
        "trial" => CampaignAxis::Trial,
        other => panic!(
            "--axis {other:?} is not a campaign axis (try pulse-length, \
             amplitude, spacing, ambient, pattern, guard, spread, ...)"
        ),
    }
}

fn main() {
    let server = flag_value("--server").unwrap_or_else(|| "127.0.0.1:7171".into());
    let job = flag_u64("--job").unwrap_or_else(|| panic!("--job <id> is required"));
    let axis = axis_from_flag();

    let mut tui = TuiDriver::from_flags(&format!("job {job}"), axis);
    let path = format!("/jobs/{job}/events");
    let status = stream_lines(server.as_str(), &path, |line| {
        if line.is_empty() {
            return true;
        }
        match tui.as_mut() {
            Some(driver) => {
                let event = CampaignEvent::from_json(line)
                    .unwrap_or_else(|e| panic!("malformed event line {line:?}: {e}"));
                driver.observe(&event);
            }
            None => println!("{line}"),
        }
        true
    })
    .unwrap_or_else(|e| panic!("event stream from {server} failed: {e}"));

    if status != 200 {
        eprintln!("server returned status {status} for {path} (unknown job id?)");
        std::process::exit(1);
    }
    if let Some(driver) = tui {
        driver.finish();
    }
}
