//! Follows a campaign job's event stream — or the whole fleet — from a
//! `neurohammer-server`.
//!
//! ```text
//! neurohammer-events --job <id> [--server 127.0.0.1:7171]
//!                    [--tui] [--axis pulse-length]
//! neurohammer-events --fleet [--server 127.0.0.1:7171]
//!                    [--poll-ms 1000] [--once]
//! ```
//!
//! **Job mode** connects to `GET /jobs/{id}/events`: the server first
//! replays every [`CampaignEvent`] the job has recorded so far (one JSON
//! object per line, the checkpoint wire format) and then streams live
//! events as the fleet folds new points, closing the stream when the job
//! finishes. By default each line is echoed verbatim to stdout — pipe it
//! to a file and it *is* a valid checkpoint replay. With `--tui` the same
//! stream drives the live ANSI dashboard the figure binaries render
//! locally, so a sharded fleet run can be watched from any machine that
//! can reach the server; `--axis` picks the sweep axis the dashboard
//! groups series by (default `pulse-length`).
//!
//! **Fleet mode** (`--fleet`) polls `GET /jobs` and
//! `GET /metrics/history?family=queue` instead: every job's shard map
//! becomes a fleet status line and the sampled queue counters become
//! sparkline trends (points folded per second, stragglers flagged,
//! speculative leases). On a terminal the dashboard redraws in place;
//! piped, each poll prints one plain frame to stdout (`--once` polls a
//! single time and exits — the CI smoke jobs use that).

use std::io::IsTerminal;
use std::time::{Duration, Instant};

use neurohammer::campaign::json::Json;
use neurohammer::campaign::{CampaignAxis, CampaignEvent};
use neurohammer_bench::observe::{terminal_width, TuiDriver};
use rram_analysis::tui::{Dashboard, TuiEvent};
use rram_server::cli::{flag_present, flag_u64, flag_value};
use rram_server::http::{call, stream_lines};

/// Maps the `--axis` flag to a dashboard grouping axis.
fn axis_from_flag() -> CampaignAxis {
    let Some(name) = flag_value("--axis") else {
        return CampaignAxis::PulseLength;
    };
    match name.as_str() {
        "array-size" => CampaignAxis::ArraySize,
        "pattern" => CampaignAxis::Pattern,
        "amplitude" => CampaignAxis::Amplitude,
        "pulse-length" => CampaignAxis::PulseLength,
        "duty-cycle" => CampaignAxis::DutyCycle,
        "spacing" => CampaignAxis::Spacing,
        "ambient" => CampaignAxis::Ambient,
        "scheme" => CampaignAxis::Scheme,
        "guard" => CampaignAxis::Guard,
        "spread" => CampaignAxis::Spread,
        "backend" => CampaignAxis::Backend,
        "trial" => CampaignAxis::Trial,
        other => panic!(
            "--axis {other:?} is not a campaign axis (try pulse-length, \
             amplitude, spacing, ambient, pattern, guard, spread, ...)"
        ),
    }
}

/// One fleet status line per job: state, progress, stragglers, shard map.
fn job_lines(jobs: &Json) -> Vec<String> {
    let Some(jobs) = jobs.get("jobs").and_then(Json::as_array) else {
        return vec!["(malformed /jobs response)".into()];
    };
    if jobs.is_empty() {
        return vec!["no jobs submitted yet".into()];
    }
    jobs.iter()
        .map(|job| {
            let text = |key: &str| {
                job.get(key)
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string()
            };
            let count = |key: &str| job.get(key).and_then(Json::as_u64).unwrap_or(0);
            let shards: Vec<String> = job
                .get("shards")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|shard| {
                    let id = shard.get("shard").and_then(Json::as_str).unwrap_or("?");
                    match shard.get("worker").and_then(Json::as_str) {
                        Some(worker) => format!("{id}:{worker}"),
                        None => format!(
                            "{id}:{}",
                            shard.get("state").and_then(Json::as_str).unwrap_or("?")
                        ),
                    }
                })
                .collect();
            let mut line = format!(
                "job {} {} · {} · {}/{} points",
                count("id"),
                text("name"),
                text("state"),
                count("points_done"),
                count("points_total"),
            );
            let stragglers = count("stragglers");
            if stragglers > 0 {
                line.push_str(&format!(" · {stragglers} straggling"));
            }
            line.push_str(&format!(" · {}", shards.join(" ")));
            line
        })
        .collect()
}

/// Extracts one counter's `(t_ms, value)` trajectory from the JSONL
/// history body.
fn history_series(body: &str, name: &str) -> Vec<(u64, f64)> {
    body.lines()
        .filter(|line| !line.is_empty())
        .filter_map(|line| {
            let sample = Json::parse(line).ok()?;
            let t_ms = sample.get("t_ms").and_then(Json::as_u64)?;
            let value = sample.get("values")?.get(name).and_then(Json::as_f64)?;
            Some((t_ms, value))
        })
        .collect()
}

/// Differentiates a cumulative counter into a per-second rate series.
fn rates(points: &[(u64, f64)]) -> Vec<f64> {
    points
        .windows(2)
        .filter_map(|pair| {
            let dt_ms = pair[1].0.saturating_sub(pair[0].0);
            if dt_ms == 0 {
                return None;
            }
            Some((pair[1].1 - pair[0].1).max(0.0) / (dt_ms as f64 / 1000.0))
        })
        .collect()
}

/// The `--fleet` dashboard loop; returns the process exit code.
fn follow_fleet(server: &str) -> i32 {
    let poll = Duration::from_millis(flag_u64("--poll-ms").unwrap_or(1000));
    let once = flag_present("--once");
    let in_place = std::io::stderr().is_terminal();
    let mut dash = Dashboard::new(format!("fleet @ {server}"));
    let started = Instant::now();
    loop {
        let (status, jobs) = match call(server, "GET", "/jobs", None) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("cannot poll {server}/jobs: {e}");
                return 1;
            }
        };
        if status != 200 {
            eprintln!("{server}/jobs returned status {status}");
            return 1;
        }
        let lines = match Json::parse(&jobs) {
            Ok(parsed) => job_lines(&parsed),
            Err(e) => vec![format!("(malformed /jobs response: {e})")],
        };
        dash.on_event(&TuiEvent::Status(lines));

        if let Ok((200, history)) = call(server, "GET", "/metrics/history?family=queue", None) {
            let folded = history_series(&history, "queue_outcomes_folded_total");
            for (label, values) in [
                ("points folded/s", rates(&folded)),
                (
                    "stragglers flagged",
                    history_series(&history, "queue_stragglers_flagged_total")
                        .iter()
                        .map(|&(_, v)| v)
                        .collect(),
                ),
                (
                    "speculative leases",
                    history_series(&history, "queue_speculative_leases_total")
                        .iter()
                        .map(|&(_, v)| v)
                        .collect(),
                ),
            ] {
                if !values.is_empty() {
                    dash.on_event(&TuiEvent::Trend {
                        name: label.into(),
                        values,
                    });
                }
            }
        }

        let elapsed = started.elapsed().as_secs_f64();
        if in_place {
            eprint!("{}", dash.ansi_frame(terminal_width(), elapsed));
        } else {
            print!("{}", dash.frame(terminal_width(), elapsed));
        }
        if once {
            return 0;
        }
        std::thread::sleep(poll);
    }
}

fn main() {
    let server = flag_value("--server").unwrap_or_else(|| "127.0.0.1:7171".into());
    if flag_present("--fleet") {
        std::process::exit(follow_fleet(&server));
    }
    let job = flag_u64("--job").unwrap_or_else(|| panic!("--job <id> or --fleet is required"));
    let axis = axis_from_flag();

    let mut tui = TuiDriver::from_flags(&format!("job {job}"), axis);
    let path = format!("/jobs/{job}/events");
    let status = stream_lines(server.as_str(), &path, |line| {
        if line.is_empty() {
            return true;
        }
        match tui.as_mut() {
            Some(driver) => {
                let event = CampaignEvent::from_json(line)
                    .unwrap_or_else(|e| panic!("malformed event line {line:?}: {e}"));
                driver.observe(&event);
            }
            None => println!("{line}"),
        }
        true
    })
    .unwrap_or_else(|e| panic!("event stream from {server} failed: {e}"));

    if status != 200 {
        eprintln!("server returned status {status} for {path} (unknown job id?)");
        std::process::exit(1);
    }
    if let Some(driver) = tui {
        driver.finish();
    }
}
