//! The job-queue state machine: jobs, shard leases, outcome folding.
//!
//! [`JobQueue`] is deliberately pure — no sockets, no threads, and no
//! clock of its own. Every lease-sensitive method takes an explicit
//! `now: Instant`, so lease expiry and reassignment are unit-testable
//! without sleeping, and the HTTP layer is a thin shell around a
//! `Mutex<JobQueue>`.
//!
//! Idempotency is structural rather than bolted on: outcomes fold into a
//! per-job `BTreeMap` keyed by grid index with the same semantics as
//! [`CampaignReport::merge`] — first submission wins, a duplicate is a
//! no-op, and a *conflicting* duplicate (same index, different content
//! fingerprint) is rejected as foreign. A worker whose lease expired and
//! was revived can therefore re-submit its whole shard without corrupting
//! the report the next lease-holder is completing.

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

use neurohammer::campaign::{
    CampaignError, CampaignEvent, CampaignExecutor, CampaignOutcome, CampaignReport, CampaignSpec,
    Shard,
};

/// Why the queue refused an API call.
#[derive(Debug)]
pub enum QueueError {
    /// No job with that id exists (never created, or deleted).
    UnknownJob(u64),
    /// The request referenced a shard outside the job's partition.
    UnknownShard {
        /// The job the request addressed.
        job: u64,
        /// The out-of-range selector.
        shard: Shard,
    },
    /// A submitted outcome does not belong to the job's grid.
    ForeignOutcome(String),
    /// The submitted spec or shard count failed validation.
    Invalid(CampaignError),
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::UnknownJob(id) => write!(f, "no job {id}"),
            QueueError::UnknownShard { job, shard } => {
                write!(f, "job {job} has no shard {shard}")
            }
            QueueError::ForeignOutcome(what) => write!(f, "foreign outcome: {what}"),
            QueueError::Invalid(e) => write!(f, "invalid job: {e}"),
        }
    }
}

impl std::error::Error for QueueError {}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; no worker has leased a shard yet.
    Queued,
    /// At least one shard is leased or recorded, not all are done.
    Running,
    /// Every shard is done; the merged report covers the full grid.
    Complete,
}

impl JobState {
    /// The lower-case label used on the wire (`"queued"`, `"running"`,
    /// `"complete"`).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Complete => "complete",
        }
    }
}

/// Lifecycle of one shard of a job, as reported by [`JobStatus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardState {
    /// Waiting for a worker (never leased, or a lease expired).
    Pending,
    /// Leased to the named worker until its lease expires.
    Leased(String),
    /// Fully recorded.
    Done,
}

/// One shard's slot in the queue's bookkeeping.
#[derive(Debug, Clone)]
enum ShardSlot {
    Pending,
    Leased { worker: String, deadline: Instant },
    Done,
}

/// A point-in-time snapshot of a job, as served by `GET /jobs/{id}`.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job's queue-assigned id.
    pub id: u64,
    /// The campaign name from the submitted spec.
    pub name: String,
    /// Derived lifecycle state.
    pub state: JobState,
    /// Outcomes recorded so far.
    pub points_done: usize,
    /// Grid points in total.
    pub points_total: usize,
    /// Per-shard states, indexed by shard index.
    pub shards: Vec<ShardState>,
}

/// A granted lease: everything a worker needs to execute one shard.
///
/// The spec is the server's validated copy (not the submitter's raw
/// bytes), and `resume` carries the outcomes already recorded for this
/// shard — a reassigned shard replays them through the executor's resume
/// path, so only its unfinished points are recomputed.
#[derive(Debug, Clone)]
pub struct LeaseGrant {
    /// The job this lease belongs to.
    pub job: u64,
    /// The campaign to execute.
    pub spec: CampaignSpec,
    /// The grid slice this lease covers.
    pub shard: Shard,
    /// How long the lease lasts without a heartbeat or result.
    pub lease: Duration,
    /// Already-recorded outcomes of this shard, to replay instead of
    /// recompute.
    pub resume: Vec<CampaignOutcome>,
}

/// What [`JobQueue::lease`] hands a worker asking for work.
#[derive(Debug, Clone)]
pub enum LeaseOffer {
    /// A shard to execute (boxed — a grant carries the whole spec and
    /// resume set, and the idle arm is a single counter).
    Grant(Box<LeaseGrant>),
    /// Nothing leasable right now.
    Idle {
        /// Jobs not yet complete (their shards are leased elsewhere).
        /// A draining worker exits when this reaches zero.
        outstanding: usize,
    },
}

/// The queue's answer to one submitted [`CampaignEvent`].
#[derive(Debug, Clone, Copy)]
pub struct EventAck {
    /// Whether a `PointFinished` outcome was newly folded in — `false`
    /// for duplicates, replayed resume points and non-point events.
    pub accepted: bool,
    /// Whether the submitting worker still holds the shard's lease
    /// (renewed by this very call when it does).
    pub held: bool,
    /// Whether the shard is now fully recorded.
    pub shard_done: bool,
    /// Whether the whole job is now complete.
    pub job_done: bool,
}

struct Job {
    spec: CampaignSpec,
    /// Grid index → content fingerprint, for foreign-outcome rejection.
    expected: HashMap<usize, u64>,
    total: usize,
    shards: Vec<ShardSlot>,
    /// Folded outcomes, keyed by grid index — [`CampaignReport::merge`]
    /// semantics (first wins), kept in grid order by the `BTreeMap`.
    outcomes: BTreeMap<usize, CampaignOutcome>,
    /// The job's recorded event log, replayed (then followed) by
    /// `GET /jobs/{id}/events`: one `Started` at submission, one
    /// `PointFinished` per *newly folded* outcome (duplicates and resume
    /// replays are not re-logged) and one `Finished` when the last shard
    /// completes — the exact event set an unsharded run emits.
    events: Vec<CampaignEvent>,
}

impl Job {
    fn complete(&self) -> bool {
        self.shards.iter().all(|s| matches!(s, ShardSlot::Done))
    }

    fn state(&self) -> JobState {
        if self.complete() {
            JobState::Complete
        } else if self.outcomes.is_empty()
            && self.shards.iter().all(|s| matches!(s, ShardSlot::Pending))
        {
            JobState::Queued
        } else {
            JobState::Running
        }
    }

    fn shard_recorded(&self, shard: Shard) -> bool {
        self.expected
            .keys()
            .filter(|&&index| shard.owns(index))
            .all(|index| self.outcomes.contains_key(index))
    }

    fn status(&self, id: u64) -> JobStatus {
        JobStatus {
            id,
            name: self.spec.name.clone(),
            state: self.state(),
            points_done: self.outcomes.len(),
            points_total: self.total,
            shards: self
                .shards
                .iter()
                .map(|slot| match slot {
                    ShardSlot::Pending => ShardState::Pending,
                    ShardSlot::Leased { worker, .. } => ShardState::Leased(worker.clone()),
                    ShardSlot::Done => ShardState::Done,
                })
                .collect(),
        }
    }
}

/// The campaign service's job queue: validated jobs, shard leases with
/// expiry, and idempotent outcome folding.
///
/// # Examples
///
/// Submit a four-point grid split two ways and lease its first shard:
///
/// ```
/// use std::time::{Duration, Instant};
/// use neurohammer::campaign::CampaignSpec;
/// use rram_server::{JobQueue, LeaseOffer};
///
/// let mut queue = JobQueue::new(Duration::from_secs(30));
/// let spec = CampaignSpec {
///     pulse_lengths_ns: vec![50.0, 100.0],
///     amplitudes_v: vec![1.05, 1.15],
///     ..CampaignSpec::default()
/// };
/// let job = queue.submit(spec, 2).unwrap();
/// assert_eq!((job.points_total, job.shards.len()), (4, 2));
///
/// let LeaseOffer::Grant(grant) = queue.lease("w0", Instant::now()) else {
///     panic!("fresh job must grant");
/// };
/// assert_eq!(grant.job, job.id);
/// assert_eq!(grant.shard.to_string(), "0/2");
/// assert!(grant.resume.is_empty());
/// ```
pub struct JobQueue {
    lease: Duration,
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
    telemetry: QueueTelemetry,
}

/// The queue's shared telemetry handles (process-global registry, so the
/// daemon's `/metrics` endpoint sees every queue instance).
struct QueueTelemetry {
    leases_granted: std::sync::Arc<rram_telemetry::Counter>,
    leases_expired: std::sync::Arc<rram_telemetry::Counter>,
    outcomes_folded: std::sync::Arc<rram_telemetry::Counter>,
    jobs_outstanding: std::sync::Arc<rram_telemetry::Gauge>,
}

impl QueueTelemetry {
    fn new() -> QueueTelemetry {
        let registry = rram_telemetry::Registry::global();
        QueueTelemetry {
            leases_granted: registry.counter(
                "queue_leases_granted_total",
                "Shard leases granted to workers",
            ),
            leases_expired: registry.counter(
                "queue_leases_expired_total",
                "Shard leases returned to the pool after missed heartbeats",
            ),
            outcomes_folded: registry.counter(
                "queue_outcomes_folded_total",
                "Point outcomes newly folded into job reports",
            ),
            jobs_outstanding: registry.gauge(
                "queue_jobs_outstanding",
                "Jobs submitted but not yet complete",
            ),
        }
    }

    /// Publishes `worker`'s liveness: `1` while it holds (or renews) a
    /// lease, `0` once a lease of its expires.
    fn worker_up(&self, worker: &str, up: bool) {
        rram_telemetry::Registry::global()
            .gauge_with(
                "queue_worker_up",
                "Worker liveness (1 = holds a live lease)",
                &[("worker", worker)],
            )
            .set(if up { 1.0 } else { 0.0 });
    }
}

impl JobQueue {
    /// An empty queue whose leases last `lease` without renewal.
    pub fn new(lease: Duration) -> JobQueue {
        JobQueue {
            lease,
            next_id: 1,
            jobs: BTreeMap::new(),
            telemetry: QueueTelemetry::new(),
        }
    }

    /// The configured lease duration.
    pub fn lease_duration(&self) -> Duration {
        self.lease
    }

    /// Validates and enqueues a campaign split into `shards` slices.
    ///
    /// Validation constructs a [`CampaignExecutor`] once, server-side, so
    /// a worker never leases a spec that cannot execute.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::Invalid`] for a spec that fails validation
    /// or a shard count of zero or above the grid's point count.
    pub fn submit(&mut self, spec: CampaignSpec, shards: usize) -> Result<JobStatus, QueueError> {
        CampaignExecutor::new(spec.clone()).map_err(QueueError::Invalid)?;
        let expected: HashMap<usize, u64> = spec
            .keyed_points()
            .into_iter()
            .map(|(key, _)| (key.index, key.id))
            .collect();
        let total = expected.len();
        if shards == 0 || shards > total {
            return Err(QueueError::Invalid(CampaignError::InvalidValue(format!(
                "shards must be between 1 and the grid's {total} points, got {shards}"
            ))));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                spec,
                expected,
                total,
                shards: vec![ShardSlot::Pending; shards],
                outcomes: BTreeMap::new(),
                events: vec![CampaignEvent::Started { total }],
            },
        );
        self.telemetry
            .jobs_outstanding
            .set(self.outstanding() as f64);
        Ok(self.jobs[&id].status(id))
    }

    /// Returns expired leases to the pending pool. Called implicitly by
    /// every time-taking method; exposed for periodic sweeps.
    pub fn expire(&mut self, now: Instant) {
        for job in self.jobs.values_mut() {
            for slot in &mut job.shards {
                if let ShardSlot::Leased { worker, deadline } = slot {
                    if *deadline <= now {
                        self.telemetry.leases_expired.inc();
                        self.telemetry.worker_up(worker, false);
                        *slot = ShardSlot::Pending;
                    }
                }
            }
        }
    }

    /// Offers `worker` a pending shard (lowest job id, lowest shard index
    /// first), or reports how many jobs are still outstanding.
    pub fn lease(&mut self, worker: &str, now: Instant) -> LeaseOffer {
        self.expire(now);
        for (&id, job) in self.jobs.iter_mut() {
            let Some(index) = job
                .shards
                .iter()
                .position(|s| matches!(s, ShardSlot::Pending))
            else {
                continue;
            };
            let shard = Shard {
                index,
                of: job.shards.len(),
            };
            job.shards[index] = ShardSlot::Leased {
                worker: worker.to_string(),
                deadline: now + self.lease,
            };
            let resume = job
                .outcomes
                .values()
                .filter(|outcome| shard.owns(outcome.key.index))
                .cloned()
                .collect();
            self.telemetry.leases_granted.inc();
            self.telemetry.worker_up(worker, true);
            return LeaseOffer::Grant(Box::new(LeaseGrant {
                job: id,
                spec: job.spec.clone(),
                shard,
                lease: self.lease,
                resume,
            }));
        }
        LeaseOffer::Idle {
            outstanding: self.outstanding(),
        }
    }

    /// Renews `worker`'s lease on a shard. Returns whether the lease is
    /// (still) held — `false` tells the worker to abandon the shard, and
    /// a vanished job reads as not-held rather than an error so deleting
    /// a job quiesces its fleet.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownShard`] for an out-of-range selector.
    pub fn heartbeat(
        &mut self,
        worker: &str,
        job: u64,
        shard: Shard,
        now: Instant,
    ) -> Result<bool, QueueError> {
        self.expire(now);
        let Some(state) = self.jobs.get_mut(&job) else {
            return Ok(false);
        };
        if shard.of != state.shards.len() || shard.validate().is_err() {
            return Err(QueueError::UnknownShard { job, shard });
        }
        let held = renew(&mut state.shards[shard.index], worker, now, self.lease);
        if held {
            self.telemetry.worker_up(worker, true);
        }
        Ok(held)
    }

    /// Folds one worker event into a job.
    ///
    /// `PointFinished` outcomes are checked against the job's grid (index
    /// and content fingerprint) and de-duplicated by grid index — a
    /// duplicate submission, e.g. from an expired-then-revived worker, is
    /// acknowledged but changes nothing. `Finished` marks the shard done
    /// only when every point it owns is recorded; a premature `Finished`
    /// from the lease holder returns the shard to the pending pool
    /// instead. Any event from the current lease holder renews its lease.
    /// A vanished job acknowledges with all-false flags so its fleet
    /// winds down.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownShard`] for an out-of-range selector
    /// and [`QueueError::ForeignOutcome`] for an outcome outside the
    /// job's grid, with a conflicting fingerprint, or outside the named
    /// shard.
    pub fn record(
        &mut self,
        worker: &str,
        job: u64,
        shard: Shard,
        event: &CampaignEvent,
        now: Instant,
    ) -> Result<EventAck, QueueError> {
        self.expire(now);
        let Some(state) = self.jobs.get_mut(&job) else {
            return Ok(EventAck {
                accepted: false,
                held: false,
                shard_done: false,
                job_done: false,
            });
        };
        if shard.of != state.shards.len() || shard.validate().is_err() {
            return Err(QueueError::UnknownShard { job, shard });
        }
        let mut accepted = false;
        match event {
            CampaignEvent::Started { .. } => {}
            CampaignEvent::PointFinished(outcome) => {
                let key = outcome.key;
                let Some(&id) = state.expected.get(&key.index) else {
                    return Err(QueueError::ForeignOutcome(format!(
                        "point index {} is outside job {job}'s {}-point grid",
                        key.index, state.total
                    )));
                };
                if id != key.id {
                    return Err(QueueError::ForeignOutcome(format!(
                        "point {} has fingerprint {:016x}, job {job} expects {id:016x} \
                         (different spec?)",
                        key.index, key.id
                    )));
                }
                if !shard.owns(key.index) {
                    return Err(QueueError::ForeignOutcome(format!(
                        "point index {} is not owned by shard {shard}",
                        key.index
                    )));
                }
                if let std::collections::btree_map::Entry::Vacant(slot) =
                    state.outcomes.entry(key.index)
                {
                    slot.insert(outcome.clone());
                    state.events.push(event.clone());
                    self.telemetry.outcomes_folded.inc();
                    accepted = true;
                }
            }
            CampaignEvent::Finished => {
                if state.shard_recorded(shard) {
                    state.shards[shard.index] = ShardSlot::Done;
                } else if matches!(&state.shards[shard.index],
                                   ShardSlot::Leased { worker: w, .. } if w == worker)
                {
                    state.shards[shard.index] = ShardSlot::Pending;
                }
            }
        }
        let held = renew(&mut state.shards[shard.index], worker, now, self.lease);
        if held {
            self.telemetry.worker_up(worker, true);
        }
        let job_done = state.complete();
        if job_done && state.events.last() != Some(&CampaignEvent::Finished) {
            // The last shard just completed: close the job's event stream.
            state.events.push(CampaignEvent::Finished);
            self.telemetry
                .jobs_outstanding
                .set(self.outstanding() as f64);
        }
        let state = &self.jobs[&job];
        Ok(EventAck {
            accepted,
            held,
            shard_done: matches!(state.shards[shard.index], ShardSlot::Done),
            job_done,
        })
    }

    /// The job's recorded events from position `from` onwards, plus whether
    /// the log is closed (ends in [`CampaignEvent::Finished`]). The event
    /// streaming endpoint polls this with an advancing cursor: the first
    /// call replays history, subsequent calls return only live additions.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownJob`] for an unknown id.
    pub fn events_from(
        &self,
        job: u64,
        from: usize,
    ) -> Result<(Vec<CampaignEvent>, bool), QueueError> {
        let state = self.jobs.get(&job).ok_or(QueueError::UnknownJob(job))?;
        let fresh = state.events.get(from..).unwrap_or_default().to_vec();
        let closed = state.events.last() == Some(&CampaignEvent::Finished);
        Ok((fresh, closed))
    }

    /// The merged report recorded so far — partial while the job runs,
    /// byte-identical to an unsharded [`CampaignSpec::run`] once
    /// complete (outcomes are kept in grid order).
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownJob`] for an unknown id.
    pub fn report(&self, job: u64) -> Result<CampaignReport, QueueError> {
        let state = self.jobs.get(&job).ok_or(QueueError::UnknownJob(job))?;
        Ok(CampaignReport {
            name: state.spec.name.clone(),
            outcomes: state.outcomes.values().cloned().collect(),
        })
    }

    /// A snapshot of one job.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownJob`] for an unknown id.
    pub fn status(&self, job: u64) -> Result<JobStatus, QueueError> {
        self.jobs
            .get(&job)
            .map(|state| state.status(job))
            .ok_or(QueueError::UnknownJob(job))
    }

    /// Snapshots of every job, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        self.jobs.iter().map(|(&id, job)| job.status(id)).collect()
    }

    /// Removes a job; in-flight workers discover the deletion through
    /// not-held heartbeat/result acknowledgements.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownJob`] for an unknown id.
    pub fn delete(&mut self, job: u64) -> Result<(), QueueError> {
        self.jobs
            .remove(&job)
            .map(|_| ())
            .ok_or(QueueError::UnknownJob(job))?;
        self.telemetry
            .jobs_outstanding
            .set(self.outstanding() as f64);
        Ok(())
    }

    /// Jobs not yet complete.
    pub fn outstanding(&self) -> usize {
        self.jobs.values().filter(|job| !job.complete()).count()
    }
}

/// Renews `slot`'s lease when `worker` holds it; reports whether it does.
fn renew(slot: &mut ShardSlot, worker: &str, now: Instant, lease: Duration) -> bool {
    match slot {
        ShardSlot::Leased {
            worker: w,
            deadline,
        } if w == worker => {
            *deadline = now + lease;
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A four-point grid that executes in well under a second.
    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            name: "queue test".into(),
            pulse_lengths_ns: vec![50.0, 100.0],
            amplitudes_v: vec![1.05, 1.15],
            max_pulses: 200_000,
            ..CampaignSpec::default()
        }
    }

    fn grant(offer: LeaseOffer) -> LeaseGrant {
        match offer {
            LeaseOffer::Grant(grant) => *grant,
            LeaseOffer::Idle { outstanding } => {
                panic!("expected a grant, got idle ({outstanding} outstanding)")
            }
        }
    }

    #[test]
    fn submit_validates_spec_and_shard_count() {
        let mut queue = JobQueue::new(Duration::from_secs(30));
        let empty = CampaignSpec {
            amplitudes_v: vec![],
            ..CampaignSpec::default()
        };
        assert!(matches!(
            queue.submit(empty, 1),
            Err(QueueError::Invalid(_))
        ));
        assert!(matches!(
            queue.submit(small_spec(), 0),
            Err(QueueError::Invalid(_))
        ));
        assert!(matches!(
            queue.submit(small_spec(), 5),
            Err(QueueError::Invalid(_))
        ));
        let job = queue.submit(small_spec(), 4).unwrap();
        assert_eq!(job.state, JobState::Queued);
        assert_eq!(job.points_total, 4);
    }

    #[test]
    fn fast_math_specs_validate_on_submit_and_forward_through_leases() {
        let mut queue = JobQueue::new(Duration::from_secs(30));
        // The flag is a batched-backend tier: the default pulse backend
        // is rejected at submission, before any shard is leased.
        let mut invalid = small_spec();
        invalid.backend_fast_math = true;
        assert!(matches!(
            queue.submit(invalid, 1),
            Err(QueueError::Invalid(_))
        ));
        // A batched fast-math spec survives the submit→lease round trip,
        // so every fleet worker executes the tier the submitter asked for.
        let json = small_spec().to_json().replace("\"pulse\"", "\"batched\"");
        let mut fast = CampaignSpec::from_json(&json).unwrap();
        fast.backend_fast_math = true;
        queue.submit(fast, 1).unwrap();
        let granted = grant(queue.lease("w1", Instant::now()));
        assert!(granted.spec.backend_fast_math);
    }

    #[test]
    fn expired_lease_is_reassigned_with_recorded_outcomes() {
        let full = small_spec().run().unwrap();
        let mut queue = JobQueue::new(Duration::from_secs(5));
        let job = queue.submit(small_spec(), 2).unwrap().id;
        let t0 = Instant::now();

        let lost = grant(queue.lease("w1", t0));
        assert_eq!(lost.shard.to_string(), "0/2");
        // w1 submits its first point, then falls silent.
        let first = full
            .outcomes
            .iter()
            .find(|o| lost.shard.owns(o.key.index))
            .unwrap();
        let ack = queue
            .record(
                "w1",
                job,
                lost.shard,
                &CampaignEvent::PointFinished(first.clone()),
                t0,
            )
            .unwrap();
        assert!(ack.accepted && ack.held && !ack.shard_done);

        // Within the lease the shard stays w1's...
        let within = t0 + Duration::from_secs(4);
        let other = grant(queue.lease("w2", within));
        assert_eq!(other.shard.to_string(), "1/2");
        // ...after expiry it is offered again, with w1's point to replay.
        let after = within + Duration::from_secs(6);
        let retaken = grant(queue.lease("w2", after));
        assert_eq!(retaken.shard.to_string(), "0/2");
        assert_eq!(retaken.resume, vec![first.clone()]);
        assert!(!queue.heartbeat("w1", job, lost.shard, after).unwrap());
    }

    #[test]
    fn double_submit_after_revival_is_idempotent() {
        let full = small_spec().run().unwrap();
        let mut queue = JobQueue::new(Duration::from_secs(5));
        let job = queue.submit(small_spec(), 2).unwrap().id;
        let t0 = Instant::now();

        let shard0 = grant(queue.lease("w1", t0)).shard;
        let owned: Vec<_> = full
            .outcomes
            .iter()
            .filter(|o| shard0.owns(o.key.index))
            .cloned()
            .collect();
        // w1 records one point, then its lease expires.
        queue
            .record(
                "w1",
                job,
                shard0,
                &CampaignEvent::PointFinished(owned[0].clone()),
                t0,
            )
            .unwrap();
        let late = t0 + Duration::from_secs(6);

        // w2 takes over shard 0 and completes it.
        let retaken = grant(queue.lease("w2", late));
        assert_eq!(retaken.shard, shard0);
        for outcome in &owned[1..] {
            queue
                .record(
                    "w2",
                    job,
                    shard0,
                    &CampaignEvent::PointFinished(outcome.clone()),
                    late,
                )
                .unwrap();
        }
        let ack = queue
            .record("w2", job, shard0, &CampaignEvent::Finished, late)
            .unwrap();
        assert!(ack.shard_done);
        let snapshot = queue.report(job).unwrap().to_json();

        // The revived w1 re-submits its entire old shard: every event is
        // acknowledged, none is accepted, the report does not change.
        for outcome in &owned {
            let ack = queue
                .record(
                    "w1",
                    job,
                    shard0,
                    &CampaignEvent::PointFinished(outcome.clone()),
                    late,
                )
                .unwrap();
            assert!(!ack.accepted && !ack.held);
        }
        let ack = queue
            .record("w1", job, shard0, &CampaignEvent::Finished, late)
            .unwrap();
        assert!(ack.shard_done && !ack.held);
        assert_eq!(queue.report(job).unwrap().to_json(), snapshot);

        // w2 finishes shard 1; the full report matches the unsharded run.
        let shard1 = grant(queue.lease("w2", late)).shard;
        for outcome in full.outcomes.iter().filter(|o| shard1.owns(o.key.index)) {
            queue
                .record(
                    "w2",
                    job,
                    shard1,
                    &CampaignEvent::PointFinished(outcome.clone()),
                    late,
                )
                .unwrap();
        }
        let ack = queue
            .record("w2", job, shard1, &CampaignEvent::Finished, late)
            .unwrap();
        assert!(ack.job_done);
        assert_eq!(queue.status(job).unwrap().state, JobState::Complete);
        assert_eq!(queue.report(job).unwrap().to_json(), full.to_json());
    }

    #[test]
    fn foreign_and_premature_submissions_are_rejected() {
        let full = small_spec().run().unwrap();
        let mut queue = JobQueue::new(Duration::from_secs(5));
        // A different spec: same grid shape, different physics.
        let other_spec = CampaignSpec {
            ambients_k: vec![350.0],
            ..small_spec()
        };
        let job = queue.submit(other_spec, 2).unwrap().id;
        let t0 = Instant::now();
        let lease = grant(queue.lease("w1", t0));

        // Same index, different content fingerprint: rejected.
        let alien = CampaignEvent::PointFinished(full.outcomes[0].clone());
        assert!(matches!(
            queue.record("w1", job, lease.shard, &alien, t0),
            Err(QueueError::ForeignOutcome(_))
        ));
        // Finishing without recording anything returns the shard.
        let ack = queue
            .record("w1", job, lease.shard, &CampaignEvent::Finished, t0)
            .unwrap();
        assert!(!ack.shard_done && !ack.held);
        let regrant = grant(queue.lease("w2", t0));
        assert_eq!(regrant.shard, lease.shard);
        // Out-of-range shard selectors are protocol errors.
        let bogus = Shard { index: 5, of: 9 };
        assert!(matches!(
            queue.record("w1", job, bogus, &CampaignEvent::Finished, t0),
            Err(QueueError::UnknownShard { .. })
        ));
    }

    #[test]
    fn deleted_jobs_quiesce_their_workers() {
        let mut queue = JobQueue::new(Duration::from_secs(5));
        let job = queue.submit(small_spec(), 1).unwrap().id;
        let t0 = Instant::now();
        let lease = grant(queue.lease("w1", t0));
        queue.delete(job).unwrap();
        assert!(matches!(queue.delete(job), Err(QueueError::UnknownJob(_))));
        assert!(!queue.heartbeat("w1", job, lease.shard, t0).unwrap());
        let ack = queue
            .record("w1", job, lease.shard, &CampaignEvent::Finished, t0)
            .unwrap();
        assert!(!ack.accepted && !ack.held && !ack.job_done);
        assert_eq!(queue.outstanding(), 0);
    }
}
