//! The job-queue state machine: jobs, shard leases, outcome folding,
//! straggler detection and per-job trace assembly.
//!
//! [`JobQueue`] is deliberately pure — no sockets, no threads, and no
//! clock of its own. Every lease-sensitive method takes an explicit
//! `now: Instant`, so lease expiry, reassignment, straggler flagging and
//! speculation are unit-testable without sleeping, and the HTTP layer is
//! a thin shell around a `Mutex<JobQueue>`.
//!
//! Idempotency is structural rather than bolted on: outcomes fold into a
//! per-job `BTreeMap` keyed by grid index with the same semantics as
//! [`CampaignReport::merge`] — first submission wins, a duplicate is a
//! no-op, and a *conflicting* duplicate (same index, different content
//! fingerprint) is rejected as foreign. A worker whose lease expired and
//! was revived can therefore re-submit its whole shard without corrupting
//! the report the next lease-holder is completing. The same property is
//! what makes **speculative execution** safe: when a leased shard runs
//! far past its expected duration (estimated from the observed per-point
//! `wall_ns` median), the queue can hand an *additional* lease on it to an
//! idle worker — whichever copy finishes first wins every point, the
//! loser's duplicates fold to no-ops, and the merged report stays
//! byte-identical to an unsharded run.
//!
//! Every job also accumulates a [`TraceLog`] — submit → lease → per-point
//! compute → fold → finish spans on a monotonic timeline anchored at the
//! submission instant — which `GET /jobs/{id}/trace` serves as JSONL.

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

use neurohammer::campaign::{
    CampaignError, CampaignEvent, CampaignExecutor, CampaignOutcome, CampaignReport, CampaignSpec,
    Shard,
};
use rram_telemetry::trace::{SpanId, TraceClock, TraceContext, TraceId, TraceLog};

/// Why the queue refused an API call.
#[derive(Debug)]
pub enum QueueError {
    /// No job with that id exists (never created, or deleted).
    UnknownJob(u64),
    /// The request referenced a shard outside the job's partition.
    UnknownShard {
        /// The job the request addressed.
        job: u64,
        /// The out-of-range selector.
        shard: Shard,
    },
    /// A submitted outcome does not belong to the job's grid.
    ForeignOutcome(String),
    /// The submitted spec or shard count failed validation.
    Invalid(CampaignError),
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::UnknownJob(id) => write!(f, "no job {id}"),
            QueueError::UnknownShard { job, shard } => {
                write!(f, "job {job} has no shard {shard}")
            }
            QueueError::ForeignOutcome(what) => write!(f, "foreign outcome: {what}"),
            QueueError::Invalid(e) => write!(f, "invalid job: {e}"),
        }
    }
}

impl std::error::Error for QueueError {}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; no worker has leased a shard yet.
    Queued,
    /// At least one shard is leased or recorded, not all are done.
    Running,
    /// Every shard is done; the merged report covers the full grid.
    Complete,
}

impl JobState {
    /// The lower-case label used on the wire (`"queued"`, `"running"`,
    /// `"complete"`).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Complete => "complete",
        }
    }
}

/// Lifecycle of one shard of a job, as reported by [`JobStatus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardState {
    /// Waiting for a worker (never leased, or a lease expired).
    Pending,
    /// Leased until expiry; the label joins every concurrent holder with
    /// `+` (more than one only under speculative execution).
    Leased(String),
    /// Fully recorded.
    Done,
}

/// One live lease on a shard. A slot normally holds exactly one; a
/// straggler-flagged shard may carry a second, *speculative* lease
/// (which kind a lease is lives as an annotation on its trace span).
#[derive(Debug, Clone)]
struct Lease {
    worker: String,
    deadline: Instant,
    started: Instant,
    span: SpanId,
}

/// One shard's slot in the queue's bookkeeping.
#[derive(Debug, Clone)]
enum ShardSlot {
    Pending,
    Leased(Vec<Lease>),
    Done,
}

/// Straggler-detection and speculative-execution policy.
///
/// A leased shard's *expected duration* is the median of the job's
/// observed per-point `wall_ns` samples times the shard's point count.
/// Once at least `min_samples` samples exist, a shard whose oldest live
/// lease has run longer than `multiple` times that estimate is flagged:
/// a structured warning is emitted, `queue_stragglers_flagged_total` is
/// incremented, and — when `speculate` is on — the shard becomes eligible
/// for one additional lease to a different, idle worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerPolicy {
    /// Flag a shard once its lease age exceeds this multiple of the
    /// expected duration.
    pub multiple: f64,
    /// Minimum `wall_ns` samples before any estimate is trusted.
    pub min_samples: usize,
    /// Whether flagged shards may be speculatively re-leased.
    pub speculate: bool,
}

impl Default for StragglerPolicy {
    fn default() -> StragglerPolicy {
        StragglerPolicy {
            multiple: 4.0,
            min_samples: 3,
            speculate: false,
        }
    }
}

/// One worker's fleet-level view, as served by `GET /fleet`.
#[derive(Debug, Clone)]
pub struct WorkerInfo {
    /// The worker's self-reported name.
    pub name: String,
    /// Milliseconds since the worker last talked to the queue.
    pub last_seen_ms: u64,
    /// Live leases the worker currently holds.
    pub active_leases: usize,
    /// Age of its oldest live lease, if it holds any.
    pub oldest_lease_ms: Option<u64>,
}

/// A point-in-time snapshot of a job, as served by `GET /jobs/{id}`.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job's queue-assigned id.
    pub id: u64,
    /// The campaign name from the submitted spec.
    pub name: String,
    /// Derived lifecycle state.
    pub state: JobState,
    /// Outcomes recorded so far.
    pub points_done: usize,
    /// Grid points in total.
    pub points_total: usize,
    /// Per-shard states, indexed by shard index.
    pub shards: Vec<ShardState>,
    /// Shards currently flagged as stragglers.
    pub stragglers: usize,
}

/// A granted lease: everything a worker needs to execute one shard.
///
/// The spec is the server's validated copy (not the submitter's raw
/// bytes), and `resume` carries the outcomes already recorded for this
/// shard — a reassigned shard replays them through the executor's resume
/// path, so only its unfinished points are recomputed.
#[derive(Debug, Clone)]
pub struct LeaseGrant {
    /// The job this lease belongs to.
    pub job: u64,
    /// The campaign to execute.
    pub spec: CampaignSpec,
    /// The grid slice this lease covers.
    pub shard: Shard,
    /// How long the lease lasts without a heartbeat or result.
    pub lease: Duration,
    /// Already-recorded outcomes of this shard, to replay instead of
    /// recompute.
    pub resume: Vec<CampaignOutcome>,
    /// The trace context identifying this lease's span — the worker
    /// echoes it (as the [`TRACE_HEADER`](rram_telemetry::trace::TRACE_HEADER)
    /// request header) on every heartbeat and result submission, so
    /// folded points attribute to the lease that computed them.
    pub trace: Option<TraceContext>,
    /// Whether this is a speculative second lease on a straggling shard.
    pub speculative: bool,
}

/// What [`JobQueue::lease`] hands a worker asking for work.
#[derive(Debug, Clone)]
pub enum LeaseOffer {
    /// A shard to execute (boxed — a grant carries the whole spec and
    /// resume set, and the idle arm is a single counter).
    Grant(Box<LeaseGrant>),
    /// Nothing leasable right now.
    Idle {
        /// Jobs not yet complete (their shards are leased elsewhere).
        /// A draining worker exits when this reaches zero.
        outstanding: usize,
    },
}

/// The queue's answer to one submitted [`CampaignEvent`].
#[derive(Debug, Clone, Copy)]
pub struct EventAck {
    /// Whether a `PointFinished` outcome was newly folded in — `false`
    /// for duplicates, replayed resume points and non-point events.
    pub accepted: bool,
    /// Whether the submitting worker still holds the shard's lease
    /// (renewed by this very call when it does).
    pub held: bool,
    /// Whether the shard is now fully recorded.
    pub shard_done: bool,
    /// Whether the whole job is now complete.
    pub job_done: bool,
}

struct Job {
    spec: CampaignSpec,
    /// Grid index → content fingerprint, for foreign-outcome rejection.
    expected: HashMap<usize, u64>,
    total: usize,
    shards: Vec<ShardSlot>,
    /// Straggler flags, parallel to `shards`; cleared when a shard
    /// completes or returns to the pending pool.
    flagged: Vec<bool>,
    /// Folded outcomes, keyed by grid index — [`CampaignReport::merge`]
    /// semantics (first wins), kept in grid order by the `BTreeMap`.
    outcomes: BTreeMap<usize, CampaignOutcome>,
    /// The job's recorded event log, replayed (then followed) by
    /// `GET /jobs/{id}/events`: one `Started` at submission, one
    /// `PointFinished` per *newly folded* outcome (duplicates and resume
    /// replays are not re-logged) and one `Finished` when the last shard
    /// completes — the exact event set an unsharded run emits.
    events: Vec<CampaignEvent>,
    /// Converts wall instants into this job's monotonic trace offsets
    /// (origin = submission).
    clock: TraceClock,
    /// The job's span timeline, served by `GET /jobs/{id}/trace`.
    trace: TraceLog,
    /// The root `"job"` span every other span nests under.
    root: SpanId,
    /// Observed per-point compute times, for straggler estimation
    /// (bounded; the median stabilises long before the cap).
    wall_samples: Vec<u64>,
}

/// Cap on the per-job `wall_ns` sample buffer.
const WALL_SAMPLE_CAP: usize = 1024;

impl Job {
    fn complete(&self) -> bool {
        self.shards.iter().all(|s| matches!(s, ShardSlot::Done))
    }

    fn state(&self) -> JobState {
        if self.complete() {
            JobState::Complete
        } else if self.outcomes.is_empty()
            && self.shards.iter().all(|s| matches!(s, ShardSlot::Pending))
        {
            JobState::Queued
        } else {
            JobState::Running
        }
    }

    fn shard_recorded(&self, shard: Shard) -> bool {
        self.expected
            .keys()
            .filter(|&&index| shard.owns(index))
            .all(|index| self.outcomes.contains_key(index))
    }

    /// Grid points owned by shard `index` of this job's partition.
    fn shard_points(&self, index: usize) -> usize {
        let shard = Shard {
            index,
            of: self.shards.len(),
        };
        self.expected
            .keys()
            .filter(|&&point| shard.owns(point))
            .count()
    }

    /// Median of the observed per-point compute times, if any.
    fn wall_median(&self) -> Option<u64> {
        if self.wall_samples.is_empty() {
            return None;
        }
        let mut sorted = self.wall_samples.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    fn status(&self, id: u64) -> JobStatus {
        JobStatus {
            id,
            name: self.spec.name.clone(),
            state: self.state(),
            points_done: self.outcomes.len(),
            points_total: self.total,
            shards: self
                .shards
                .iter()
                .map(|slot| match slot {
                    ShardSlot::Pending => ShardState::Pending,
                    ShardSlot::Leased(leases) => ShardState::Leased(
                        leases
                            .iter()
                            .map(|l| l.worker.as_str())
                            .collect::<Vec<_>>()
                            .join("+"),
                    ),
                    ShardSlot::Done => ShardState::Done,
                })
                .collect(),
            stragglers: self.flagged.iter().filter(|&&f| f).count(),
        }
    }
}

/// The campaign service's job queue: validated jobs, shard leases with
/// expiry, idempotent outcome folding, per-job traces and straggler
/// detection.
///
/// # Examples
///
/// Submit a four-point grid split two ways and lease its first shard:
///
/// ```
/// use std::time::{Duration, Instant};
/// use neurohammer::campaign::CampaignSpec;
/// use rram_server::{JobQueue, LeaseOffer};
///
/// let mut queue = JobQueue::new(Duration::from_secs(30));
/// let spec = CampaignSpec {
///     pulse_lengths_ns: vec![50.0, 100.0],
///     amplitudes_v: vec![1.05, 1.15],
///     ..CampaignSpec::default()
/// };
/// let job = queue.submit(spec, 2, Instant::now()).unwrap();
/// assert_eq!((job.points_total, job.shards.len()), (4, 2));
///
/// let LeaseOffer::Grant(grant) = queue.lease("w0", Instant::now()) else {
///     panic!("fresh job must grant");
/// };
/// assert_eq!(grant.job, job.id);
/// assert_eq!(grant.shard.to_string(), "0/2");
/// assert!(grant.resume.is_empty());
/// // Every grant carries a trace context for the worker to echo back.
/// let ctx = grant.trace.unwrap();
/// assert_eq!(queue.trace_jsonl(job.id).unwrap().lines().count(), 3);
/// assert!(queue
///     .trace_jsonl(job.id)
///     .unwrap()
///     .contains(&format!("{}", ctx.span)));
/// ```
pub struct JobQueue {
    lease: Duration,
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
    policy: StragglerPolicy,
    /// Worker name → last time it talked to the queue.
    workers: BTreeMap<String, Instant>,
    telemetry: QueueTelemetry,
}

/// The queue's shared telemetry handles (process-global registry, so the
/// daemon's `/metrics` endpoint sees every queue instance).
struct QueueTelemetry {
    leases_granted: std::sync::Arc<rram_telemetry::Counter>,
    leases_expired: std::sync::Arc<rram_telemetry::Counter>,
    outcomes_folded: std::sync::Arc<rram_telemetry::Counter>,
    stragglers_flagged: std::sync::Arc<rram_telemetry::Counter>,
    speculative_leases: std::sync::Arc<rram_telemetry::Counter>,
    jobs_outstanding: std::sync::Arc<rram_telemetry::Gauge>,
}

impl QueueTelemetry {
    fn new() -> QueueTelemetry {
        let registry = rram_telemetry::Registry::global();
        QueueTelemetry {
            leases_granted: registry.counter(
                "queue_leases_granted_total",
                "Shard leases granted to workers",
            ),
            leases_expired: registry.counter(
                "queue_leases_expired_total",
                "Shard leases returned to the pool after missed heartbeats",
            ),
            outcomes_folded: registry.counter(
                "queue_outcomes_folded_total",
                "Point outcomes newly folded into job reports",
            ),
            stragglers_flagged: registry.counter(
                "queue_stragglers_flagged_total",
                "Shards flagged as stragglers (lease age beyond the expected-duration multiple)",
            ),
            speculative_leases: registry.counter(
                "queue_speculative_leases_total",
                "Second leases granted on straggler-flagged shards",
            ),
            jobs_outstanding: registry.gauge(
                "queue_jobs_outstanding",
                "Jobs submitted but not yet complete",
            ),
        }
    }

    /// Publishes `worker`'s liveness: `1` while it holds (or renews) a
    /// lease, `0` once a lease of its expires.
    fn worker_up(&self, worker: &str, up: bool) {
        rram_telemetry::Registry::global()
            .gauge_with(
                "queue_worker_up",
                "Worker liveness (1 = holds a live lease)",
                &[("worker", worker)],
            )
            .set(if up { 1.0 } else { 0.0 });
    }
}

impl JobQueue {
    /// An empty queue whose leases last `lease` without renewal, with the
    /// default (non-speculating) [`StragglerPolicy`].
    pub fn new(lease: Duration) -> JobQueue {
        JobQueue {
            lease,
            next_id: 1,
            jobs: BTreeMap::new(),
            policy: StragglerPolicy::default(),
            workers: BTreeMap::new(),
            telemetry: QueueTelemetry::new(),
        }
    }

    /// The configured lease duration.
    pub fn lease_duration(&self) -> Duration {
        self.lease
    }

    /// Replaces the straggler policy (the `--speculate` and
    /// `--straggler-multiple` server flags end up here).
    pub fn set_straggler_policy(&mut self, policy: StragglerPolicy) {
        self.policy = policy;
    }

    /// The active straggler policy.
    pub fn straggler_policy(&self) -> StragglerPolicy {
        self.policy
    }

    /// Validates and enqueues a campaign split into `shards` slices.
    /// `now` anchors the job's trace timeline: every span offset counts
    /// from the submission instant.
    ///
    /// Validation constructs a [`CampaignExecutor`] once, server-side, so
    /// a worker never leases a spec that cannot execute.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::Invalid`] for a spec that fails validation
    /// or a shard count of zero or above the grid's point count.
    pub fn submit(
        &mut self,
        spec: CampaignSpec,
        shards: usize,
        now: Instant,
    ) -> Result<JobStatus, QueueError> {
        CampaignExecutor::new(spec.clone()).map_err(QueueError::Invalid)?;
        let expected: HashMap<usize, u64> = spec
            .keyed_points()
            .into_iter()
            .map(|(key, _)| (key.index, key.id))
            .collect();
        let total = expected.len();
        if shards == 0 || shards > total {
            return Err(QueueError::Invalid(CampaignError::InvalidValue(format!(
                "shards must be between 1 and the grid's {total} points, got {shards}"
            ))));
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut trace = TraceLog::new(TraceId::derive(id));
        let root = trace.start("job", None, 0);
        trace.annotate(root, "name", &spec.name);
        trace.annotate(root, "points", &total.to_string());
        trace.annotate(root, "shards", &shards.to_string());
        trace.instant("submit", Some(root), 0);
        self.jobs.insert(
            id,
            Job {
                spec,
                expected,
                total,
                shards: vec![ShardSlot::Pending; shards],
                flagged: vec![false; shards],
                outcomes: BTreeMap::new(),
                events: vec![CampaignEvent::Started { total }],
                clock: TraceClock::new(now),
                trace,
                root,
                wall_samples: Vec::new(),
            },
        );
        self.telemetry
            .jobs_outstanding
            .set(self.outstanding() as f64);
        Ok(self.jobs[&id].status(id))
    }

    /// Returns expired leases to the pending pool and sweeps for
    /// stragglers. Called implicitly by every time-taking method; exposed
    /// for periodic sweeps.
    pub fn expire(&mut self, now: Instant) {
        let policy = self.policy;
        for (&id, job) in self.jobs.iter_mut() {
            let t = job.clock.at(now);
            // Expiry: drop lapsed leases; a slot with none left pends again.
            for index in 0..job.shards.len() {
                let expired: Vec<Lease> = match &mut job.shards[index] {
                    ShardSlot::Leased(leases) => {
                        let (dead, live): (Vec<Lease>, Vec<Lease>) =
                            leases.drain(..).partition(|l| l.deadline <= now);
                        *leases = live;
                        dead
                    }
                    _ => continue,
                };
                for lease in &expired {
                    self.telemetry.leases_expired.inc();
                    self.telemetry.worker_up(&lease.worker, false);
                    job.trace.annotate(lease.span, "outcome", "expired");
                    job.trace.end(lease.span, t);
                }
                if matches!(&job.shards[index], ShardSlot::Leased(l) if l.is_empty()) {
                    job.shards[index] = ShardSlot::Pending;
                    job.flagged[index] = false;
                }
            }
            // Straggler sweep: flag leased shards running far beyond the
            // median-based expectation.
            if job.wall_samples.len() < policy.min_samples {
                continue;
            }
            let Some(median) = job.wall_median() else {
                continue;
            };
            for index in 0..job.shards.len() {
                if job.flagged[index] {
                    continue;
                }
                let (oldest, span, workers) = match &job.shards[index] {
                    ShardSlot::Leased(leases) if !leases.is_empty() => {
                        let oldest = leases.iter().min_by_key(|l| l.started).expect("non-empty");
                        (
                            oldest.started,
                            oldest.span,
                            leases
                                .iter()
                                .map(|l| l.worker.as_str())
                                .collect::<Vec<_>>()
                                .join("+"),
                        )
                    }
                    _ => continue,
                };
                let expected_ns = median as f64 * job.shard_points(index).max(1) as f64;
                let elapsed_ns = now.saturating_duration_since(oldest).as_nanos() as f64;
                if elapsed_ns <= policy.multiple * expected_ns {
                    continue;
                }
                job.flagged[index] = true;
                self.telemetry.stragglers_flagged.inc();
                job.trace.instant("straggler", Some(span), t);
                let shard = Shard {
                    index,
                    of: job.shards.len(),
                };
                // Structured warning, one JSON object per line, greppable
                // alongside the daemon's other stderr output.
                eprintln!(
                    "{{\"warn\":\"straggler\",\"job\":{id},\"shard\":\"{shard}\",\
                     \"workers\":\"{}\",\"elapsed_ms\":{},\"expected_ms\":{}}}",
                    workers.replace('\\', "\\\\").replace('"', "\\\""),
                    (elapsed_ns / 1e6) as u64,
                    (expected_ns / 1e6) as u64,
                );
            }
        }
    }

    /// Offers `worker` a pending shard (lowest job id, lowest shard index
    /// first), or reports how many jobs are still outstanding. With
    /// speculation enabled and nothing pending, a straggler-flagged shard
    /// held by a *different* worker under a single lease is offered again
    /// as a speculative copy.
    pub fn lease(&mut self, worker: &str, now: Instant) -> LeaseOffer {
        self.expire(now);
        self.workers.insert(worker.to_string(), now);
        let lease = self.lease;
        for (&id, job) in self.jobs.iter_mut() {
            let Some(index) = job
                .shards
                .iter()
                .position(|s| matches!(s, ShardSlot::Pending))
            else {
                continue;
            };
            let grant = grant_lease(job, id, index, worker, now, lease, false);
            self.telemetry.leases_granted.inc();
            self.telemetry.worker_up(worker, true);
            return LeaseOffer::Grant(Box::new(grant));
        }
        if self.policy.speculate {
            for (&id, job) in self.jobs.iter_mut() {
                let Some(index) = (0..job.shards.len()).find(|&i| {
                    job.flagged[i]
                        && matches!(&job.shards[i], ShardSlot::Leased(leases)
                            if leases.len() == 1 && leases[0].worker != worker)
                }) else {
                    continue;
                };
                let grant = grant_lease(job, id, index, worker, now, lease, true);
                self.telemetry.leases_granted.inc();
                self.telemetry.speculative_leases.inc();
                self.telemetry.worker_up(worker, true);
                return LeaseOffer::Grant(Box::new(grant));
            }
        }
        LeaseOffer::Idle {
            outstanding: self.outstanding(),
        }
    }

    /// Renews `worker`'s lease on a shard. Returns whether the lease is
    /// (still) held — `false` tells the worker to abandon the shard, and
    /// a vanished job reads as not-held rather than an error so deleting
    /// a job quiesces its fleet.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownShard`] for an out-of-range selector.
    pub fn heartbeat(
        &mut self,
        worker: &str,
        job: u64,
        shard: Shard,
        now: Instant,
    ) -> Result<bool, QueueError> {
        self.expire(now);
        self.workers.insert(worker.to_string(), now);
        let Some(state) = self.jobs.get_mut(&job) else {
            return Ok(false);
        };
        if shard.of != state.shards.len() || shard.validate().is_err() {
            return Err(QueueError::UnknownShard { job, shard });
        }
        let held = renew(&mut state.shards[shard.index], worker, now, self.lease);
        if held {
            self.telemetry.worker_up(worker, true);
        }
        Ok(held)
    }

    /// Folds one worker event into a job.
    ///
    /// `PointFinished` outcomes are checked against the job's grid (index
    /// and content fingerprint) and de-duplicated by grid index — a
    /// duplicate submission, e.g. from an expired-then-revived worker or
    /// a losing speculative copy, is acknowledged but changes nothing.
    /// `Finished` marks the shard done only when every point it owns is
    /// recorded; a premature `Finished` from a lease holder drops that
    /// worker's lease instead (back to pending once no lease remains).
    /// Any event from a current lease holder renews its lease. A vanished
    /// job acknowledges with all-false flags so its fleet winds down.
    ///
    /// `ctx` is the trace context the worker echoed back (from
    /// [`LeaseGrant::trace`]); a newly folded outcome's `compute` span is
    /// parented under that lease span when it names one, falling back to
    /// the worker's live lease, then the job root.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownShard`] for an out-of-range selector
    /// and [`QueueError::ForeignOutcome`] for an outcome outside the
    /// job's grid, with a conflicting fingerprint, or outside the named
    /// shard.
    pub fn record(
        &mut self,
        worker: &str,
        job: u64,
        shard: Shard,
        event: &CampaignEvent,
        ctx: Option<TraceContext>,
        now: Instant,
    ) -> Result<EventAck, QueueError> {
        self.expire(now);
        self.workers.insert(worker.to_string(), now);
        let Some(state) = self.jobs.get_mut(&job) else {
            return Ok(EventAck {
                accepted: false,
                held: false,
                shard_done: false,
                job_done: false,
            });
        };
        if shard.of != state.shards.len() || shard.validate().is_err() {
            return Err(QueueError::UnknownShard { job, shard });
        }
        let t = state.clock.at(now);
        let mut accepted = false;
        match event {
            CampaignEvent::Started { .. } => {}
            CampaignEvent::PointFinished(outcome) => {
                let key = outcome.key;
                let Some(&id) = state.expected.get(&key.index) else {
                    return Err(QueueError::ForeignOutcome(format!(
                        "point index {} is outside job {job}'s {}-point grid",
                        key.index, state.total
                    )));
                };
                if id != key.id {
                    return Err(QueueError::ForeignOutcome(format!(
                        "point {} has fingerprint {:016x}, job {job} expects {id:016x} \
                         (different spec?)",
                        key.index, key.id
                    )));
                }
                if !shard.owns(key.index) {
                    return Err(QueueError::ForeignOutcome(format!(
                        "point index {} is not owned by shard {shard}",
                        key.index
                    )));
                }
                if let std::collections::btree_map::Entry::Vacant(slot) =
                    state.outcomes.entry(key.index)
                {
                    slot.insert(outcome.clone());
                    state.events.push(event.clone());
                    self.telemetry.outcomes_folded.inc();
                    accepted = true;
                    if let Some(wall) = outcome.wall_ns {
                        if state.wall_samples.len() < WALL_SAMPLE_CAP {
                            state.wall_samples.push(wall);
                        }
                    }
                    // Trace: the compute interval (reconstructed from the
                    // outcome's wall time) ending at this fold.
                    let parent = ctx
                        .filter(|c| c.trace == state.trace.trace() && state.trace.contains(c.span))
                        .map(|c| c.span)
                        .or_else(|| lease_span_of(&state.shards[shard.index], worker))
                        .or(Some(state.root));
                    let start = t.saturating_sub(outcome.wall_ns.unwrap_or(0));
                    let compute = state.trace.span("compute", parent, start, t);
                    state
                        .trace
                        .annotate(compute, "index", &key.index.to_string());
                    state.trace.annotate(compute, "worker", worker);
                    state.trace.instant("fold", Some(compute), t);
                }
            }
            CampaignEvent::Finished => {
                if state.shard_recorded(shard) {
                    let closing: Vec<(SpanId, bool)> = match &state.shards[shard.index] {
                        ShardSlot::Leased(leases) => leases
                            .iter()
                            .map(|l| (l.span, l.worker == worker))
                            .collect(),
                        _ => Vec::new(),
                    };
                    for (span, mine) in closing {
                        state.trace.annotate(
                            span,
                            "outcome",
                            if mine { "done" } else { "superseded" },
                        );
                        state.trace.end(span, t);
                    }
                    state.shards[shard.index] = ShardSlot::Done;
                    state.flagged[shard.index] = false;
                } else {
                    let mut returned = None;
                    let mut emptied = false;
                    if let ShardSlot::Leased(leases) = &mut state.shards[shard.index] {
                        if let Some(pos) = leases.iter().position(|l| l.worker == worker) {
                            returned = Some(leases.remove(pos));
                            emptied = leases.is_empty();
                        }
                    }
                    if let Some(lease) = returned {
                        state.trace.annotate(lease.span, "outcome", "returned");
                        state.trace.end(lease.span, t);
                        if emptied {
                            state.shards[shard.index] = ShardSlot::Pending;
                            state.flagged[shard.index] = false;
                        }
                    }
                }
            }
        }
        let held = renew(&mut state.shards[shard.index], worker, now, self.lease);
        if held {
            self.telemetry.worker_up(worker, true);
        }
        let job_done = state.complete();
        if job_done && state.events.last() != Some(&CampaignEvent::Finished) {
            // The last shard just completed: close the job's event stream
            // and its trace.
            state.events.push(CampaignEvent::Finished);
            state.trace.instant("finish", Some(state.root), t);
            let root = state.root;
            state.trace.end(root, t);
            self.telemetry
                .jobs_outstanding
                .set(self.outstanding() as f64);
        }
        let state = &self.jobs[&job];
        Ok(EventAck {
            accepted,
            held,
            shard_done: matches!(state.shards[shard.index], ShardSlot::Done),
            job_done,
        })
    }

    /// The job's recorded events from position `from` onwards, plus whether
    /// the log is closed (ends in [`CampaignEvent::Finished`]). The event
    /// streaming endpoint polls this with an advancing cursor: the first
    /// call replays history, subsequent calls return only live additions.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownJob`] for an unknown id.
    pub fn events_from(
        &self,
        job: u64,
        from: usize,
    ) -> Result<(Vec<CampaignEvent>, bool), QueueError> {
        let state = self.jobs.get(&job).ok_or(QueueError::UnknownJob(job))?;
        let fresh = state.events.get(from..).unwrap_or_default().to_vec();
        let closed = state.events.last() == Some(&CampaignEvent::Finished);
        Ok((fresh, closed))
    }

    /// The job's span timeline as JSONL, one
    /// [`SpanRecord`](rram_telemetry::trace::SpanRecord) per line in
    /// allocation order — what `GET /jobs/{id}/trace` serves.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownJob`] for an unknown id.
    pub fn trace_jsonl(&self, job: u64) -> Result<String, QueueError> {
        self.jobs
            .get(&job)
            .map(|state| state.trace.jsonl())
            .ok_or(QueueError::UnknownJob(job))
    }

    /// The merged report recorded so far — partial while the job runs,
    /// byte-identical to an unsharded [`CampaignSpec::run`] once
    /// complete (outcomes are kept in grid order).
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownJob`] for an unknown id.
    pub fn report(&self, job: u64) -> Result<CampaignReport, QueueError> {
        let state = self.jobs.get(&job).ok_or(QueueError::UnknownJob(job))?;
        Ok(CampaignReport {
            name: state.spec.name.clone(),
            outcomes: state.outcomes.values().cloned().collect(),
        })
    }

    /// A snapshot of one job.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownJob`] for an unknown id.
    pub fn status(&self, job: u64) -> Result<JobStatus, QueueError> {
        self.jobs
            .get(&job)
            .map(|state| state.status(job))
            .ok_or(QueueError::UnknownJob(job))
    }

    /// Snapshots of every job, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        self.jobs.iter().map(|(&id, job)| job.status(id)).collect()
    }

    /// Every worker that ever talked to this queue, in name order, with
    /// its liveness as of `now` — the `GET /fleet` data source.
    pub fn fleet(&self, now: Instant) -> Vec<WorkerInfo> {
        self.workers
            .iter()
            .map(|(name, &seen)| {
                let mut active = 0;
                let mut oldest: Option<Duration> = None;
                for job in self.jobs.values() {
                    for slot in &job.shards {
                        let ShardSlot::Leased(leases) = slot else {
                            continue;
                        };
                        for lease in leases.iter().filter(|l| &l.worker == name) {
                            active += 1;
                            let age = now.saturating_duration_since(lease.started);
                            oldest = Some(oldest.map_or(age, |o| o.max(age)));
                        }
                    }
                }
                WorkerInfo {
                    name: name.clone(),
                    last_seen_ms: now.saturating_duration_since(seen).as_millis() as u64,
                    active_leases: active,
                    oldest_lease_ms: oldest.map(|d| d.as_millis() as u64),
                }
            })
            .collect()
    }

    /// Removes a job; in-flight workers discover the deletion through
    /// not-held heartbeat/result acknowledgements.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownJob`] for an unknown id.
    pub fn delete(&mut self, job: u64) -> Result<(), QueueError> {
        self.jobs
            .remove(&job)
            .map(|_| ())
            .ok_or(QueueError::UnknownJob(job))?;
        self.telemetry
            .jobs_outstanding
            .set(self.outstanding() as f64);
        Ok(())
    }

    /// Jobs not yet complete.
    pub fn outstanding(&self) -> usize {
        self.jobs.values().filter(|job| !job.complete()).count()
    }
}

/// Adds a lease on `job`'s shard `index` for `worker`, opening its trace
/// span, and builds the grant.
fn grant_lease(
    job: &mut Job,
    id: u64,
    index: usize,
    worker: &str,
    now: Instant,
    lease: Duration,
    speculative: bool,
) -> LeaseGrant {
    let shard = Shard {
        index,
        of: job.shards.len(),
    };
    let t = job.clock.at(now);
    let span = job.trace.start("lease", Some(job.root), t);
    job.trace.annotate(span, "worker", worker);
    job.trace.annotate(span, "shard", &shard.to_string());
    if speculative {
        job.trace.annotate(span, "speculative", "true");
    }
    let record = Lease {
        worker: worker.to_string(),
        deadline: now + lease,
        started: now,
        span,
    };
    match &mut job.shards[index] {
        ShardSlot::Leased(leases) => leases.push(record),
        slot => *slot = ShardSlot::Leased(vec![record]),
    }
    let resume = job
        .outcomes
        .values()
        .filter(|outcome| shard.owns(outcome.key.index))
        .cloned()
        .collect();
    LeaseGrant {
        job: id,
        spec: job.spec.clone(),
        shard,
        lease,
        resume,
        trace: Some(TraceContext {
            trace: job.trace.trace(),
            span,
        }),
        speculative,
    }
}

/// Renews `worker`'s lease in `slot` when it holds one; reports whether
/// it does.
fn renew(slot: &mut ShardSlot, worker: &str, now: Instant, lease: Duration) -> bool {
    match slot {
        ShardSlot::Leased(leases) => match leases.iter_mut().find(|l| l.worker == worker) {
            Some(held) => {
                held.deadline = now + lease;
                true
            }
            None => false,
        },
        _ => false,
    }
}

/// The span of `worker`'s live lease in `slot`, if any.
fn lease_span_of(slot: &ShardSlot, worker: &str) -> Option<SpanId> {
    match slot {
        ShardSlot::Leased(leases) => leases.iter().find(|l| l.worker == worker).map(|l| l.span),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A four-point grid that executes in well under a second.
    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            name: "queue test".into(),
            pulse_lengths_ns: vec![50.0, 100.0],
            amplitudes_v: vec![1.05, 1.15],
            max_pulses: 200_000,
            ..CampaignSpec::default()
        }
    }

    fn grant(offer: LeaseOffer) -> LeaseGrant {
        match offer {
            LeaseOffer::Grant(grant) => *grant,
            LeaseOffer::Idle { outstanding } => {
                panic!("expected a grant, got idle ({outstanding} outstanding)")
            }
        }
    }

    #[test]
    fn submit_validates_spec_and_shard_count() {
        let mut queue = JobQueue::new(Duration::from_secs(30));
        let t0 = Instant::now();
        let empty = CampaignSpec {
            amplitudes_v: vec![],
            ..CampaignSpec::default()
        };
        assert!(matches!(
            queue.submit(empty, 1, t0),
            Err(QueueError::Invalid(_))
        ));
        assert!(matches!(
            queue.submit(small_spec(), 0, t0),
            Err(QueueError::Invalid(_))
        ));
        assert!(matches!(
            queue.submit(small_spec(), 5, t0),
            Err(QueueError::Invalid(_))
        ));
        let job = queue.submit(small_spec(), 4, t0).unwrap();
        assert_eq!(job.state, JobState::Queued);
        assert_eq!(job.points_total, 4);
    }

    #[test]
    fn fast_math_specs_validate_on_submit_and_forward_through_leases() {
        let mut queue = JobQueue::new(Duration::from_secs(30));
        // The flag is a batched-backend tier: the default pulse backend
        // is rejected at submission, before any shard is leased.
        let mut invalid = small_spec();
        invalid.backend_fast_math = true;
        assert!(matches!(
            queue.submit(invalid, 1, Instant::now()),
            Err(QueueError::Invalid(_))
        ));
        // A batched fast-math spec survives the submit→lease round trip,
        // so every fleet worker executes the tier the submitter asked for.
        let json = small_spec().to_json().replace("\"pulse\"", "\"batched\"");
        let mut fast = CampaignSpec::from_json(&json).unwrap();
        fast.backend_fast_math = true;
        queue.submit(fast, 1, Instant::now()).unwrap();
        let granted = grant(queue.lease("w1", Instant::now()));
        assert!(granted.spec.backend_fast_math);
    }

    #[test]
    fn expired_lease_is_reassigned_with_recorded_outcomes() {
        let full = small_spec().run().unwrap();
        let mut queue = JobQueue::new(Duration::from_secs(5));
        let t0 = Instant::now();
        let job = queue.submit(small_spec(), 2, t0).unwrap().id;

        let lost = grant(queue.lease("w1", t0));
        assert_eq!(lost.shard.to_string(), "0/2");
        // w1 submits its first point, then falls silent.
        let first = full
            .outcomes
            .iter()
            .find(|o| lost.shard.owns(o.key.index))
            .unwrap();
        let ack = queue
            .record(
                "w1",
                job,
                lost.shard,
                &CampaignEvent::PointFinished(first.clone()),
                lost.trace,
                t0,
            )
            .unwrap();
        assert!(ack.accepted && ack.held && !ack.shard_done);

        // Within the lease the shard stays w1's...
        let within = t0 + Duration::from_secs(4);
        let other = grant(queue.lease("w2", within));
        assert_eq!(other.shard.to_string(), "1/2");
        // ...after expiry it is offered again, with w1's point to replay.
        let after = within + Duration::from_secs(6);
        let retaken = grant(queue.lease("w2", after));
        assert_eq!(retaken.shard.to_string(), "0/2");
        assert_eq!(retaken.resume, vec![first.clone()]);
        assert!(!queue.heartbeat("w1", job, lost.shard, after).unwrap());

        // The trace shows the reassignment: w1's lease span closed as
        // expired, and a fresh lease span for w2 on the same shard.
        let trace = queue.trace_jsonl(job).unwrap();
        assert!(trace.contains("\"outcome\":\"expired\""));
        assert_eq!(trace.matches("\"name\":\"lease\"").count(), 3);
        assert_eq!(trace.matches("\"name\":\"compute\"").count(), 1);
    }

    #[test]
    fn double_submit_after_revival_is_idempotent() {
        let full = small_spec().run().unwrap();
        let mut queue = JobQueue::new(Duration::from_secs(5));
        let t0 = Instant::now();
        let job = queue.submit(small_spec(), 2, t0).unwrap().id;

        let shard0 = grant(queue.lease("w1", t0)).shard;
        let owned: Vec<_> = full
            .outcomes
            .iter()
            .filter(|o| shard0.owns(o.key.index))
            .cloned()
            .collect();
        // w1 records one point, then its lease expires.
        queue
            .record(
                "w1",
                job,
                shard0,
                &CampaignEvent::PointFinished(owned[0].clone()),
                None,
                t0,
            )
            .unwrap();
        let late = t0 + Duration::from_secs(6);

        // w2 takes over shard 0 and completes it.
        let retaken = grant(queue.lease("w2", late));
        assert_eq!(retaken.shard, shard0);
        for outcome in &owned[1..] {
            queue
                .record(
                    "w2",
                    job,
                    shard0,
                    &CampaignEvent::PointFinished(outcome.clone()),
                    retaken.trace,
                    late,
                )
                .unwrap();
        }
        let ack = queue
            .record("w2", job, shard0, &CampaignEvent::Finished, None, late)
            .unwrap();
        assert!(ack.shard_done);
        let snapshot = queue.report(job).unwrap().to_json();

        // The revived w1 re-submits its entire old shard: every event is
        // acknowledged, none is accepted, the report does not change.
        for outcome in &owned {
            let ack = queue
                .record(
                    "w1",
                    job,
                    shard0,
                    &CampaignEvent::PointFinished(outcome.clone()),
                    None,
                    late,
                )
                .unwrap();
            assert!(!ack.accepted && !ack.held);
        }
        let ack = queue
            .record("w1", job, shard0, &CampaignEvent::Finished, None, late)
            .unwrap();
        assert!(ack.shard_done && !ack.held);
        assert_eq!(queue.report(job).unwrap().to_json(), snapshot);

        // w2 finishes shard 1; the full report matches the unsharded run.
        let shard1 = grant(queue.lease("w2", late)).shard;
        for outcome in full.outcomes.iter().filter(|o| shard1.owns(o.key.index)) {
            queue
                .record(
                    "w2",
                    job,
                    shard1,
                    &CampaignEvent::PointFinished(outcome.clone()),
                    None,
                    late,
                )
                .unwrap();
        }
        let ack = queue
            .record("w2", job, shard1, &CampaignEvent::Finished, None, late)
            .unwrap();
        assert!(ack.job_done);
        assert_eq!(queue.status(job).unwrap().state, JobState::Complete);
        assert_eq!(queue.report(job).unwrap().to_json(), full.to_json());

        // The closed trace covers every grid point exactly once and ends
        // with the finish marker.
        let trace = queue.trace_jsonl(job).unwrap();
        assert_eq!(
            trace.matches("\"name\":\"compute\"").count(),
            full.outcomes.len()
        );
        assert_eq!(
            trace.matches("\"name\":\"fold\"").count(),
            full.outcomes.len()
        );
        assert_eq!(trace.matches("\"name\":\"finish\"").count(), 1);
    }

    #[test]
    fn foreign_and_premature_submissions_are_rejected() {
        let full = small_spec().run().unwrap();
        let mut queue = JobQueue::new(Duration::from_secs(5));
        // A different spec: same grid shape, different physics.
        let other_spec = CampaignSpec {
            ambients_k: vec![350.0],
            ..small_spec()
        };
        let t0 = Instant::now();
        let job = queue.submit(other_spec, 2, t0).unwrap().id;
        let lease = grant(queue.lease("w1", t0));

        // Same index, different content fingerprint: rejected.
        let alien = CampaignEvent::PointFinished(full.outcomes[0].clone());
        assert!(matches!(
            queue.record("w1", job, lease.shard, &alien, None, t0),
            Err(QueueError::ForeignOutcome(_))
        ));
        // Finishing without recording anything returns the shard.
        let ack = queue
            .record("w1", job, lease.shard, &CampaignEvent::Finished, None, t0)
            .unwrap();
        assert!(!ack.shard_done && !ack.held);
        let regrant = grant(queue.lease("w2", t0));
        assert_eq!(regrant.shard, lease.shard);
        // Out-of-range shard selectors are protocol errors.
        let bogus = Shard { index: 5, of: 9 };
        assert!(matches!(
            queue.record("w1", job, bogus, &CampaignEvent::Finished, None, t0),
            Err(QueueError::UnknownShard { .. })
        ));
    }

    #[test]
    fn deleted_jobs_quiesce_their_workers() {
        let mut queue = JobQueue::new(Duration::from_secs(5));
        let t0 = Instant::now();
        let job = queue.submit(small_spec(), 1, t0).unwrap().id;
        let lease = grant(queue.lease("w1", t0));
        queue.delete(job).unwrap();
        assert!(matches!(queue.delete(job), Err(QueueError::UnknownJob(_))));
        assert!(!queue.heartbeat("w1", job, lease.shard, t0).unwrap());
        let ack = queue
            .record("w1", job, lease.shard, &CampaignEvent::Finished, None, t0)
            .unwrap();
        assert!(!ack.accepted && !ack.held && !ack.job_done);
        assert_eq!(queue.outstanding(), 0);
    }

    #[test]
    fn stragglers_are_flagged_and_speculatively_re_leased() {
        let full = small_spec().run().unwrap();
        let mut queue = JobQueue::new(Duration::from_secs(3600));
        queue.set_straggler_policy(StragglerPolicy {
            multiple: 2.0,
            min_samples: 1,
            speculate: true,
        });
        let t0 = Instant::now();
        let job = queue.submit(small_spec(), 2, t0).unwrap().id;

        // w1 takes shard 0; w2 takes shard 1, finishes it quickly, and
        // its wall samples seed the expected-duration estimate.
        let slow = grant(queue.lease("w1", t0));
        let fast = grant(queue.lease("w2", t0));
        assert!(!slow.speculative && !fast.speculative);
        let mut fast_outcomes: Vec<_> = full
            .outcomes
            .iter()
            .filter(|o| fast.shard.owns(o.key.index))
            .cloned()
            .collect();
        for outcome in &mut fast_outcomes {
            outcome.wall_ns = Some(1_000_000); // 1 ms per point
            queue
                .record(
                    "w2",
                    job,
                    fast.shard,
                    &CampaignEvent::PointFinished(outcome.clone()),
                    fast.trace,
                    t0 + Duration::from_millis(2),
                )
                .unwrap();
        }
        queue
            .record(
                "w2",
                job,
                fast.shard,
                &CampaignEvent::Finished,
                fast.trace,
                t0 + Duration::from_millis(2),
            )
            .unwrap();

        // Nothing pending, shard 0 not flagged yet: w2 idles.
        let offer = queue.lease("w2", t0 + Duration::from_millis(3));
        assert!(matches!(offer, LeaseOffer::Idle { outstanding: 1 }));

        // Expected duration for shard 0 is ~2 ms (2 points × 1 ms); far
        // beyond 2× that, a heartbeat-driven sweep flags it and the next
        // idle poll grants a speculative copy to w2.
        let later = t0 + Duration::from_millis(500);
        assert!(queue.heartbeat("w1", job, slow.shard, later).unwrap());
        assert_eq!(queue.status(job).unwrap().stragglers, 1);
        let spec_grant = grant(queue.lease("w2", later));
        assert!(spec_grant.speculative);
        assert_eq!(spec_grant.shard, slow.shard);
        // Both hold the shard now; neither lease displaced the other.
        assert!(queue.heartbeat("w1", job, slow.shard, later).unwrap());
        assert!(queue.heartbeat("w2", job, slow.shard, later).unwrap());
        let status = queue.status(job).unwrap();
        assert_eq!(
            status.shards[slow.shard.index],
            ShardState::Leased("w1+w2".into())
        );
        // No third copy: the slot already carries two leases.
        assert!(matches!(queue.lease("w3", later), LeaseOffer::Idle { .. }));

        // w2's copy wins every remaining point; w1's late duplicates fold
        // to no-ops and the report is byte-identical to the unsharded run.
        for outcome in full
            .outcomes
            .iter()
            .filter(|o| slow.shard.owns(o.key.index))
        {
            queue
                .record(
                    "w2",
                    job,
                    slow.shard,
                    &CampaignEvent::PointFinished(outcome.clone()),
                    spec_grant.trace,
                    later,
                )
                .unwrap();
        }
        let ack = queue
            .record(
                "w2",
                job,
                slow.shard,
                &CampaignEvent::Finished,
                spec_grant.trace,
                later,
            )
            .unwrap();
        assert!(ack.shard_done && ack.job_done);
        for outcome in full
            .outcomes
            .iter()
            .filter(|o| slow.shard.owns(o.key.index))
        {
            let ack = queue
                .record(
                    "w1",
                    job,
                    slow.shard,
                    &CampaignEvent::PointFinished(outcome.clone()),
                    slow.trace,
                    later,
                )
                .unwrap();
            assert!(!ack.accepted);
        }
        assert_eq!(queue.report(job).unwrap().to_json(), full.to_json());

        // The trace names the speculative lease and the straggler marker.
        let trace = queue.trace_jsonl(job).unwrap();
        assert!(trace.contains("\"speculative\":\"true\""));
        assert!(trace.contains("\"name\":\"straggler\""));
        assert!(trace.contains("\"outcome\":\"superseded\""));
    }

    #[test]
    fn fleet_reports_worker_liveness_and_lease_age() {
        let mut queue = JobQueue::new(Duration::from_secs(60));
        let t0 = Instant::now();
        queue.submit(small_spec(), 2, t0).unwrap();
        grant(queue.lease("w1", t0));
        let later = t0 + Duration::from_millis(250);
        let offer = queue.lease("w2", later); // takes shard 1
        assert!(matches!(offer, LeaseOffer::Grant(_)));
        let fleet = queue.fleet(t0 + Duration::from_millis(500));
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet[0].name, "w1");
        assert_eq!(fleet[0].active_leases, 1);
        assert_eq!(fleet[0].last_seen_ms, 500);
        assert_eq!(fleet[0].oldest_lease_ms, Some(500));
        assert_eq!(fleet[1].name, "w2");
        assert_eq!(fleet[1].last_seen_ms, 250);
        assert_eq!(fleet[1].oldest_lease_ms, Some(250));
    }
}
