//! The `GET /fleet` overview: one self-contained HTML page summarising
//! the whole campaign service — every job, per-worker liveness and lease
//! age, and throughput trends derived from the daemon's metric history.
//!
//! Pure rendering: the route handler snapshots the queue and the history
//! ring under their locks, then calls [`fleet_page`] with plain data, so
//! the page is a deterministic function of its inputs and never holds a
//! lock across formatting.

use std::time::Duration;

use rram_analysis::html::{svg_chart, HtmlReport, SvgSeries};
use rram_telemetry::history::MetricHistory;

use crate::jobs::{JobStatus, ShardState, WorkerInfo};

/// Converts a cumulative counter trajectory (`(t_ms, total)` samples)
/// into a per-second rate series (`(t_seconds, rate)`), one point per
/// adjacent sample pair. Counter resets (a decrease) clamp to zero
/// rather than going negative.
pub(crate) fn rate_series(points: &[(u64, f64)]) -> Vec<(f64, f64)> {
    points
        .windows(2)
        .filter_map(|pair| {
            let dt_ms = pair[1].0.saturating_sub(pair[0].0);
            if dt_ms == 0 {
                return None;
            }
            let rate = (pair[1].1 - pair[0].1).max(0.0) / (dt_ms as f64 / 1000.0);
            Some((pair[1].0 as f64 / 1000.0, rate))
        })
        .collect()
}

fn ms_label(ms: u64) -> String {
    if ms >= 10_000 {
        format!("{:.1} s", ms as f64 / 1000.0)
    } else {
        format!("{ms} ms")
    }
}

/// Renders the fleet overview page.
pub(crate) fn fleet_page(
    jobs: &[JobStatus],
    workers: &[WorkerInfo],
    history: &MetricHistory,
    uptime: Duration,
) -> String {
    let mut page = HtmlReport::new("NeuroHammer fleet");
    page.section("Service");
    let complete = jobs
        .iter()
        .filter(|j| j.state == crate::jobs::JobState::Complete)
        .count();
    let stragglers: usize = jobs.iter().map(|j| j.stragglers).sum();
    page.key_values(&[
        ("uptime".into(), format!("{:.1} s", uptime.as_secs_f64())),
        ("jobs".into(), jobs.len().to_string()),
        ("outstanding".into(), (jobs.len() - complete).to_string()),
        ("workers seen".into(), workers.len().to_string()),
        ("straggler shards".into(), stragglers.to_string()),
        ("history samples".into(), history.len().to_string()),
    ]);

    page.section("Jobs");
    if jobs.is_empty() {
        page.paragraph("No jobs submitted yet.");
    } else {
        let mut table =
            String::from("id  name                  state     points        stragglers  shards\n");
        for job in jobs {
            let shards: Vec<String> = job
                .shards
                .iter()
                .enumerate()
                .map(|(index, state)| match state {
                    ShardState::Pending => format!("{index}:pending"),
                    ShardState::Leased(who) => format!("{index}:{who}"),
                    ShardState::Done => format!("{index}:done"),
                })
                .collect();
            table.push_str(&format!(
                "{:<4}{:<22}{:<10}{:<14}{:<12}{}\n",
                job.id,
                job.name,
                job.state.label(),
                format!("{}/{}", job.points_done, job.points_total),
                job.stragglers,
                shards.join(" ")
            ));
        }
        page.preformatted(table);
    }

    page.section("Workers");
    if workers.is_empty() {
        page.paragraph("No worker has connected yet.");
    } else {
        let mut table = String::from("worker          last seen    leases  oldest lease\n");
        for worker in workers {
            table.push_str(&format!(
                "{:<16}{:<13}{:<8}{}\n",
                worker.name,
                ms_label(worker.last_seen_ms),
                worker.active_leases,
                worker
                    .oldest_lease_ms
                    .map(ms_label)
                    .unwrap_or_else(|| "-".into()),
            ));
        }
        page.preformatted(table);
    }

    page.section("Trends");
    let folded = rate_series(&history.series("queue_outcomes_folded_total"));
    page.paragraph(
        "Per-second rates derived from the sampled counters \
         (what GET /metrics/history serves as JSONL).",
    );
    page.raw(svg_chart(
        &[SvgSeries {
            name: "points folded /s".into(),
            points: folded,
        }],
        "uptime, s",
        "points/s",
        false,
        false,
    ));
    let cumulative: Vec<SvgSeries> = [
        ("leases granted", "queue_leases_granted_total"),
        ("leases expired", "queue_leases_expired_total"),
        ("stragglers flagged", "queue_stragglers_flagged_total"),
        ("speculative leases", "queue_speculative_leases_total"),
    ]
    .iter()
    .map(|(label, series)| SvgSeries {
        name: (*label).into(),
        points: history
            .series(series)
            .iter()
            .map(|&(t, v)| (t as f64 / 1000.0, v))
            .collect(),
    })
    .collect();
    page.raw(svg_chart(&cumulative, "uptime, s", "total", false, false));
    if history.is_empty() {
        page.paragraph("No metric samples yet — the sampler runs on a fixed interval.");
    }
    page.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobState;
    use rram_telemetry::history::MetricSample;

    #[test]
    fn rate_series_differentiates_and_clamps() {
        let rates = rate_series(&[(0, 0.0), (1000, 4.0), (2000, 4.0), (3000, 1.0)]);
        assert_eq!(rates, vec![(1.0, 4.0), (2.0, 0.0), (3.0, 0.0)]);
        assert!(rate_series(&[(5, 1.0)]).is_empty());
    }

    #[test]
    fn fleet_page_is_self_contained_and_deterministic() {
        let jobs = vec![JobStatus {
            id: 1,
            name: "fig3a".into(),
            state: JobState::Running,
            points_done: 3,
            points_total: 4,
            shards: vec![ShardState::Done, ShardState::Leased("w1+w2".into())],
            stragglers: 1,
        }];
        let workers = vec![WorkerInfo {
            name: "w1".into(),
            last_seen_ms: 120,
            active_leases: 1,
            oldest_lease_ms: Some(45_000),
        }];
        let mut history = MetricHistory::new(8);
        for t in 0..4u64 {
            history.push(MetricSample {
                t_ms: t * 1000,
                values: vec![("queue_outcomes_folded_total".into(), t as f64)],
            });
        }
        let page = fleet_page(&jobs, &workers, &history, Duration::from_secs(9));
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("fig3a"));
        assert!(page.contains("w1+w2"));
        assert!(page.contains("45.0 s"));
        assert!(page.contains("points folded /s"));
        assert_eq!(
            page,
            fleet_page(&jobs, &workers, &history, Duration::from_secs(9))
        );
    }
}
