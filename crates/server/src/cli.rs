//! Tiny flag helpers shared by the `neurohammer-server` and
//! `neurohammer-worker` binaries (same conventions as the figure
//! binaries: `--flag value`, with a forgotten value rejected loudly).

/// Returns the value following `flag`, rejecting a missing value or one
/// that is itself a `--flag` token (a forgotten argument).
///
/// # Panics
///
/// Panics when the flag is present without a value (these binaries are
/// command-line tools).
pub fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let flag_index = args.iter().position(|a| a == flag)?;
    let value = args
        .get(flag_index + 1)
        .filter(|value| !value.starts_with("--"))
        .unwrap_or_else(|| panic!("{flag} requires a value argument"));
    Some(value.clone())
}

/// Reads `flag`'s value as a `u64`.
///
/// # Panics
///
/// Panics when the value is missing or not an integer.
pub fn flag_u64(flag: &str) -> Option<u64> {
    flag_value(flag).map(|value| {
        value
            .parse()
            .unwrap_or_else(|_| panic!("{flag} requires an integer, got {value:?}"))
    })
}

/// Reads `flag`'s value as an `f64`.
///
/// # Panics
///
/// Panics when the value is missing or not a number.
pub fn flag_f64(flag: &str) -> Option<f64> {
    flag_value(flag).map(|value| {
        value
            .parse()
            .unwrap_or_else(|_| panic!("{flag} requires a number, got {value:?}"))
    })
}

/// Whether a bare `--flag` is present.
pub fn flag_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}
