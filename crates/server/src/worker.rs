//! The fleet worker: lease a shard, execute it through the shared
//! [`neurohammer_bench::worker`] runner, stream events back, repeat.
//!
//! One iteration of [`run_worker`]'s loop:
//!
//! 1. `POST /lease` — receive a [`LeaseGrant`]: the
//!    validated spec, a shard selector, the lease duration and the resume
//!    set (outcomes the server already holds for that shard).
//! 2. Execute the shard with
//!    [`execute_shard`],
//!    seeding the executor's resume path with the grant's resume set so
//!    only unfinished points are computed.
//! 3. Stream each *fresh* `PointFinished` back over `POST /results`
//!    (replayed resume points are skipped — the server has them). Every
//!    submission renews the lease; a heartbeat thread renews it at a
//!    third of the lease period while points compute. Each request
//!    echoes the grant's trace context as the
//!    [`rram_telemetry::trace::TRACE_HEADER`] header, so
//!    the server attributes folds to the lease span that computed them.
//! 4. Once the shard's grid is exhausted the heartbeat thread is stopped
//!    and **joined first**, and only then is the final `Finished` event
//!    submitted — no in-flight lease renewal can race the submission
//!    that completes the shard.
//! 5. When the server answers `idle` with zero outstanding jobs, a
//!    draining worker exits; otherwise it polls for more work.
//!
//! For fault-injection (tests and the CI smoke jobs): `kill_after:
//! Some(n)` makes the worker fall silent after streaming its `n`-th
//! point — no further results, no heartbeats, no `Finished` — which is
//! indistinguishable, to the server, from `SIGKILL` mid-grid; and
//! `slow_point: Some(d)` sleeps `d` after streaming each point, turning
//! the worker into a deliberate straggler (the sleep happens *after* the
//! point computes, so its `wall_ns` observability stays honest).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use neurohammer::campaign::json::Json;
use neurohammer::campaign::{CampaignEvent, CampaignOutcome, CampaignSpec, PointKey, Shard};
use neurohammer_bench::worker::{execute_shard, RunOptions};
use rram_telemetry::trace::{TraceContext, TRACE_HEADER};

use crate::{http, LeaseGrant, ServiceError};

/// Configuration of one fleet worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The server's `host:port`.
    pub server: String,
    /// This worker's name, as shown in job statuses and lease logs.
    pub name: String,
    /// How long to wait between lease requests when idle.
    pub poll: Duration,
    /// Exit once the server reports zero outstanding jobs (otherwise the
    /// worker polls forever, like a daemonised fleet member).
    pub drain: bool,
    /// Fault injection: fall silent after streaming this many points.
    pub kill_after: Option<u64>,
    /// Fault injection: sleep this long after streaming each point,
    /// making the worker a deliberate straggler.
    pub slow_point: Option<Duration>,
    /// Directory of the persistent α-matrix cache, if any.
    pub alpha_cache: Option<std::path::PathBuf>,
    /// Render live progress lines on stderr.
    pub progress: bool,
}

impl WorkerConfig {
    /// A worker named `name` against `server`, with a 500 ms idle poll,
    /// no drain, no fault injection.
    pub fn new(server: impl Into<String>, name: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            server: server.into(),
            name: name.into(),
            poll: Duration::from_millis(500),
            drain: false,
            kill_after: None,
            slow_point: None,
            alpha_cache: None,
            progress: false,
        }
    }
}

/// What one leased shard execution did.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The job the lease belonged to.
    pub job: u64,
    /// The executed shard.
    pub shard: Shard,
    /// Keys of the points this worker computed *and streamed* itself.
    pub executed: Vec<PointKey>,
    /// Points replayed from the grant's resume set (not re-streamed).
    pub replayed: usize,
    /// Whether the server acknowledged the shard as done.
    pub completed: bool,
}

/// What a whole [`run_worker`] session did.
#[derive(Debug, Clone, Default)]
pub struct WorkerSummary {
    /// One entry per leased shard, in execution order.
    pub shards: Vec<ShardRun>,
    /// Whether the session ended by `kill_after` fault injection.
    pub killed: bool,
}

struct Ack {
    accepted: bool,
    held: bool,
    shard_done: bool,
}

/// Consecutive heartbeat failures tolerated before the thread gives up
/// and lets the lease expire server-side.
const HEARTBEAT_RETRIES: u32 = 5;

/// The delay before heartbeat retry number `attempt`: exponential from
/// 50 ms, capped at the renewal interval, plus a 0–99 ms jitter hashed
/// from the worker's name and the attempt — deterministic per worker
/// (no RNG available or needed) yet decorrelated across a fleet.
fn heartbeat_backoff(worker: &str, attempt: u32, interval: Duration) -> Duration {
    let base = Duration::from_millis(50 << attempt.min(6));
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in worker.bytes().chain(attempt.to_le_bytes()) {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    base.min(interval) + Duration::from_millis(hash % 100)
}

fn protocol(what: impl Into<String>) -> ServiceError {
    ServiceError::Protocol(what.into())
}

/// Posts one JSON body (echoing `trace` as the [`TRACE_HEADER`] request
/// header when present) and parses the JSON answer, demanding HTTP 200.
fn post_json(
    server: &str,
    path: &str,
    body: &Json,
    trace: Option<TraceContext>,
) -> Result<Json, ServiceError> {
    let header = trace.map(|ctx| ctx.header_value());
    let extra: Vec<(&str, &str)> = header
        .as_deref()
        .map(|value| (TRACE_HEADER, value))
        .into_iter()
        .collect();
    let response = http::call_with(
        server,
        "POST",
        path,
        Some(&body.to_compact_string()),
        &extra,
    )?;
    if response.status != 200 {
        return Err(protocol(format!(
            "{path} answered {}: {}",
            response.status, response.body
        )));
    }
    Json::parse(&response.body)
        .map_err(|e| protocol(format!("{path} answered malformed JSON: {e}")))
}

fn submission(config: &WorkerConfig, grant: &LeaseGrant, event: &CampaignEvent) -> Json {
    Json::Object(vec![
        ("worker".into(), Json::String(config.name.clone())),
        ("job".into(), Json::Number(grant.job as f64)),
        ("shard".into(), Json::String(grant.shard.to_string())),
        ("event".into(), event.to_json_value()),
    ])
}

fn post_event(
    config: &WorkerConfig,
    grant: &LeaseGrant,
    event: &CampaignEvent,
) -> Result<Ack, ServiceError> {
    let answer = post_json(
        &config.server,
        "/results",
        &submission(config, grant, event),
        grant.trace,
    )?;
    let flag = |key: &str| answer.get(key).and_then(Json::as_bool).unwrap_or(false);
    Ok(Ack {
        accepted: flag("accepted"),
        held: flag("held"),
        shard_done: flag("shard_done"),
    })
}

/// Parses a lease grant from the `/lease` answer. `header_trace` is the
/// response's [`TRACE_HEADER`] value, preferred over the JSON `trace`
/// field when both are present (the header is the canonical carrier; a
/// missing or garbled context simply leaves submissions unattributed).
fn parse_grant(offer: &Json, header_trace: Option<&str>) -> Result<LeaseGrant, ServiceError> {
    let field = |key: &str| {
        offer
            .get(key)
            .ok_or_else(|| protocol(format!("lease grant lacks {key:?}")))
    };
    let shard = Shard::parse(
        field("shard")?
            .as_str()
            .ok_or_else(|| protocol("lease shard must be a string"))?,
    )
    .map_err(ServiceError::Campaign)?;
    let resume = field("resume")?
        .as_array()
        .ok_or_else(|| protocol("lease resume must be an array"))?
        .iter()
        .map(CampaignOutcome::from_json_value)
        .collect::<Result<Vec<_>, _>>()
        .map_err(ServiceError::Campaign)?;
    let trace = header_trace
        .or_else(|| offer.get("trace").and_then(Json::as_str))
        .and_then(TraceContext::parse);
    Ok(LeaseGrant {
        job: field("job")?
            .as_u64()
            .ok_or_else(|| protocol("lease job must be an integer"))?,
        spec: CampaignSpec::from_json_value(field("spec")?).map_err(ServiceError::Campaign)?,
        shard,
        lease: Duration::from_millis(
            field("lease_ms")?
                .as_u64()
                .ok_or_else(|| protocol("lease_ms must be an integer"))?,
        ),
        resume,
        trace,
        speculative: offer
            .get("speculative")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    })
}

/// Runs the worker loop until the queue drains (with
/// [`WorkerConfig::drain`]), the fault injection fires, or the server
/// becomes unreachable.
///
/// # Errors
///
/// Returns [`ServiceError`] when the server cannot be reached, violates
/// the protocol, or a leased campaign fails to execute.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerSummary, ServiceError> {
    let mut summary = WorkerSummary::default();
    let mut streamed: u64 = 0;
    loop {
        let body = Json::Object(vec![("worker".into(), Json::String(config.name.clone()))]);
        let response = http::call_with(
            &config.server,
            "POST",
            "/lease",
            Some(&body.to_compact_string()),
            &[],
        )?;
        if response.status != 200 {
            return Err(protocol(format!(
                "/lease answered {}: {}",
                response.status, response.body
            )));
        }
        let offer = Json::parse(&response.body)
            .map_err(|e| protocol(format!("/lease answered malformed JSON: {e}")))?;
        if offer.get("idle").is_some() {
            let outstanding = offer.get("outstanding").and_then(Json::as_u64).unwrap_or(0);
            if config.drain && outstanding == 0 {
                return Ok(summary);
            }
            std::thread::sleep(config.poll);
            continue;
        }
        let grant = parse_grant(&offer, response.header(TRACE_HEADER))?;
        if config.progress {
            eprintln!(
                "worker {:?}: leased job {} shard {}{} ({} resumed)",
                config.name,
                grant.job,
                grant.shard,
                if grant.speculative {
                    " [speculative]"
                } else {
                    ""
                },
                grant.resume.len()
            );
        }
        let run = run_shard(config, &grant, &mut streamed)?;
        let killed = run.killed;
        summary.shards.push(run.run);
        if killed {
            summary.killed = true;
            return Ok(summary);
        }
    }
}

struct ShardResult {
    run: ShardRun,
    killed: bool,
}

fn run_shard(
    config: &WorkerConfig,
    grant: &LeaseGrant,
    streamed: &mut u64,
) -> Result<ShardResult, ServiceError> {
    let resume_keys: HashSet<PointKey> = grant.resume.iter().map(|o| o.key).collect();

    // Heartbeat at a third of the lease period while points compute; the
    // thread stops when the shard finishes, the lease is lost, or the
    // fault injection silences this worker (a dead worker heartbeats no
    // more than it submits).
    let stop = Arc::new(AtomicBool::new(false));
    let held = Arc::new(AtomicBool::new(true));
    let silenced = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let (stop, held) = (Arc::clone(&stop), Arc::clone(&held));
        let silenced = Arc::clone(&silenced);
        let (config, grant) = (config.clone(), grant.clone());
        let interval = (grant.lease / 3).max(Duration::from_millis(50));
        std::thread::spawn(move || {
            let body = Json::Object(vec![
                ("worker".into(), Json::String(config.name.clone())),
                ("job".into(), Json::Number(grant.job as f64)),
                ("shard".into(), Json::String(grant.shard.to_string())),
            ]);
            let mut elapsed = Duration::ZERO;
            let mut wait = interval;
            let mut failures: u32 = 0;
            let tick = Duration::from_millis(25);
            while !stop.load(Ordering::SeqCst) && !silenced.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed < wait {
                    continue;
                }
                elapsed = Duration::ZERO;
                match post_json(&config.server, "/heartbeat", &body, grant.trace) {
                    Ok(answer) => {
                        failures = 0;
                        wait = interval;
                        if answer.get("held").and_then(Json::as_bool) != Some(true) {
                            held.store(false, Ordering::SeqCst);
                            break;
                        }
                    }
                    Err(error) => {
                        // A transient failure must not silently orphan the
                        // lease: warn with the identifiers an operator needs
                        // and retry on a jittered exponential backoff. The
                        // jitter decorrelates a fleet whose members all lost
                        // the same server at the same moment.
                        failures += 1;
                        if failures > HEARTBEAT_RETRIES {
                            eprintln!(
                                "worker {:?}: giving up on heartbeats for job {} shard {} \
                                 after {HEARTBEAT_RETRIES} retries; the lease will expire \
                                 server-side",
                                config.name, grant.job, grant.shard,
                            );
                            break;
                        }
                        wait = heartbeat_backoff(&config.name, failures, interval);
                        eprintln!(
                            "worker {:?}: heartbeat for job {} shard {} failed ({error}); \
                             retry {failures}/{HEARTBEAT_RETRIES} in {} ms",
                            config.name,
                            grant.job,
                            grant.shard,
                            wait.as_millis(),
                        );
                    }
                }
            }
        })
    };

    let mut run = ShardRun {
        job: grant.job,
        shard: grant.shard,
        executed: Vec::new(),
        replayed: 0,
        completed: false,
    };
    let mut failure: Option<ServiceError> = None;
    let mut saw_finished = false;
    let options = RunOptions {
        shard: grant.shard,
        resume: grant.resume.clone(),
        checkpoint: None,
        alpha_cache: config.alpha_cache.clone(),
        progress: config.progress,
    };
    let report = execute_shard(grant.spec.clone(), options, |event| {
        if silenced.load(Ordering::SeqCst) || failure.is_some() || !held.load(Ordering::SeqCst) {
            return;
        }
        match event {
            CampaignEvent::Started { .. } => {
                // Also serves as the first lease renewal.
                if let Err(e) = post_event(config, grant, event) {
                    failure = Some(e);
                }
            }
            CampaignEvent::PointFinished(outcome) => {
                if resume_keys.contains(&outcome.key) {
                    run.replayed += 1;
                    return;
                }
                match post_event(config, grant, event) {
                    Ok(ack) => {
                        run.executed.push(outcome.key);
                        *streamed += 1;
                        if !ack.held {
                            held.store(false, Ordering::SeqCst);
                        }
                        if config.kill_after.is_some_and(|n| *streamed >= n) {
                            silenced.store(true, Ordering::SeqCst);
                        }
                        let _ = ack.accepted;
                        // Straggler fault injection: dawdle *between*
                        // points, after the submission, so each point's
                        // wall_ns reflects its real compute time.
                        if let Some(dawdle) = config.slow_point {
                            std::thread::sleep(dawdle);
                        }
                    }
                    Err(e) => failure = Some(e),
                }
            }
            // Deferred: the final `Finished` is submitted only after the
            // heartbeat thread has been joined, below.
            CampaignEvent::Finished => saw_finished = true,
        }
    });
    // Stop and join the heartbeat thread *before* the final submission:
    // once the join returns, no renewal of ours is in flight, so the
    // server processes the shard-completing `Finished` strictly after
    // every heartbeat this worker will ever send for this lease.
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    if saw_finished
        && failure.is_none()
        && !silenced.load(Ordering::SeqCst)
        && held.load(Ordering::SeqCst)
    {
        match post_event(config, grant, &CampaignEvent::Finished) {
            Ok(ack) => run.completed = ack.shard_done,
            Err(e) => failure = Some(e),
        }
    }
    report.map_err(ServiceError::Campaign)?;
    if let Some(error) = failure {
        return Err(error);
    }
    Ok(ShardResult {
        run,
        killed: silenced.load(Ordering::SeqCst),
    })
}
