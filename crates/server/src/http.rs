//! A minimal HTTP/1.1 reader, writer and client on `std::net`.
//!
//! Just enough of the protocol for the campaign service: request line +
//! headers + `Content-Length`-delimited body on the way in, a fixed
//! `Connection: close` response on the way out — one request per
//! connection, no keep-alive, no TLS. The one exception to the
//! fixed-length model is the event stream (`GET /jobs/{id}/events`),
//! which uses `Transfer-Encoding: chunked` so the daemon can keep the
//! response open and append events as they land; [`write_chunked_head`],
//! [`write_chunk`], [`finish_chunked`] produce it and [`stream_lines`]
//! consumes it incrementally. Both the server and the worker/test
//! client speak through this module, so a plain `curl` works against
//! the daemon too.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::ServiceError;

/// Hard cap on request/response bodies (64 MiB) — far above any campaign
/// report, and enough to reject a stream that is clearly not ours.
const MAX_BODY: usize = 64 << 20;

/// Hard cap on the request head (64 KiB of request line + headers).
const MAX_HEAD: usize = 64 << 10;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, `DELETE`, ...), upper-cased by the
    /// client.
    pub method: String,
    /// Request target path, query string stripped (`/jobs/1/report`).
    pub path: String,
    /// The raw query string, without the `?` (empty when absent).
    pub query: String,
    /// Request headers as `(lower-cased name, trimmed value)` pairs, in
    /// arrival order.
    pub headers: Vec<(String, String)>,
    /// Decoded UTF-8 body (empty when the request carried none).
    pub body: String,
}

impl Request {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key` (`?family=queue&x=1`), if any.
    /// Values are taken verbatim — no percent-decoding, which the
    /// service's metric-family and job-id parameters never need.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Parses `head`'s header lines into `(lower-cased name, value)` pairs.
fn parse_headers(head: &str) -> Vec<(String, String)> {
    head.lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect()
}

fn protocol(what: impl Into<String>) -> ServiceError {
    ServiceError::Protocol(what.into())
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|pos| pos + 4)
}

fn content_length(head: &str) -> Result<usize, ServiceError> {
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let length: usize = value
                .trim()
                .parse()
                .map_err(|_| protocol(format!("bad Content-Length {:?}", value.trim())))?;
            if length > MAX_BODY {
                return Err(protocol(format!("body of {length} bytes exceeds the cap")));
            }
            return Ok(length);
        }
    }
    Ok(0)
}

fn read_message(stream: &mut TcpStream) -> Result<(String, String), ServiceError> {
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(end) = find_head_end(&buffer) {
            break end;
        }
        if buffer.len() > MAX_HEAD {
            return Err(protocol("request head exceeds the cap"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(protocol("connection closed mid-message"));
        }
        buffer.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buffer[..head_end].to_vec())
        .map_err(|_| protocol("head is not UTF-8"))?;
    let length = content_length(&head)?;
    let mut body = buffer[head_end..].to_vec();
    while body.len() < length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(protocol("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(length);
    let body = String::from_utf8(body).map_err(|_| protocol("body is not UTF-8"))?;
    Ok((head, body))
}

/// Reads one request from a connection.
///
/// # Errors
///
/// Returns [`ServiceError::Io`] on socket failures and
/// [`ServiceError::Protocol`] on malformed HTTP.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServiceError> {
    let (head, body) = read_message(stream)?;
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(protocol(format!("bad request line {request_line:?}")));
    };
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query: query.to_string(),
        headers: parse_headers(&head),
        body,
    })
}

/// The reason phrase for the handful of status codes the service uses.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        _ => "Internal Server Error",
    }
}

/// Writes one `Connection: close` response and flushes the stream.
///
/// # Errors
///
/// Returns the socket error, if any.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, body, &[])
}

/// [`write_response`] with extra response headers (e.g. the trace
/// context a lease grant hands its worker).
///
/// # Errors
///
/// Returns the socket error, if any.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra: &[(String, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {length}\r\nConnection: close\r\n",
        reason = status_reason(status),
        length = body.len(),
    );
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    write!(stream, "{head}\r\n{body}")?;
    stream.flush()
}

/// Starts a `Transfer-Encoding: chunked` response. Follow with any
/// number of [`write_chunk`] calls and close with [`finish_chunked`].
///
/// # Errors
///
/// Returns the socket error, if any.
pub fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason = status_reason(status),
    )?;
    stream.flush()
}

/// Writes one chunk of a chunked response and flushes it, so a live
/// consumer sees the data immediately. Empty payloads are skipped — an
/// empty chunk would terminate the stream.
///
/// # Errors
///
/// Returns the socket error, if any.
pub fn write_chunk(stream: &mut TcpStream, data: &str) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n{data}\r\n", data.len())?;
    stream.flush()
}

/// Terminates a chunked response (the zero-length chunk).
///
/// # Errors
///
/// Returns the socket error, if any.
pub fn finish_chunked(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Incrementally decodes a chunked response body into complete
/// `\n`-terminated lines.
struct ChunkDecoder {
    /// Raw bytes received but not yet decoded.
    raw: Vec<u8>,
    /// Decoded payload bytes not yet split into lines.
    decoded: Vec<u8>,
    /// Payload bytes still owed by the chunk being decoded.
    pending: usize,
    /// The terminating zero-length chunk has been seen.
    done: bool,
}

impl ChunkDecoder {
    fn new(leftover: &[u8]) -> Self {
        Self {
            raw: leftover.to_vec(),
            decoded: Vec::new(),
            pending: 0,
            done: false,
        }
    }

    /// Feeds raw socket bytes in and appends any completed lines
    /// (without the trailing newline) to `lines`.
    fn feed(&mut self, bytes: &[u8], lines: &mut Vec<String>) -> Result<(), ServiceError> {
        self.raw.extend_from_slice(bytes);
        // Decode first, surface lines after: the loop must fall through
        // to the line splitter below even when this feed also carried the
        // terminating chunk, or the final payload would be swallowed.
        loop {
            if self.done {
                break;
            }
            if self.pending > 0 {
                // Mid-chunk: move payload over, then consume the CRLF
                // that closes the chunk.
                let take = self.pending.min(self.raw.len());
                self.decoded.extend_from_slice(&self.raw[..take]);
                self.raw.drain(..take);
                self.pending -= take;
                if self.pending > 0 {
                    break;
                }
            }
            // Between chunks: need a size line ending in CRLF. Stripping
            // leading CRLFs here also swallows the one that closes the
            // previous chunk's payload, whenever it arrives.
            while self.raw.starts_with(b"\r\n") {
                self.raw.drain(..2);
            }
            let Some(eol) = self.raw.windows(2).position(|w| w == b"\r\n") else {
                break;
            };
            let size_line = String::from_utf8(self.raw[..eol].to_vec())
                .map_err(|_| protocol("chunk size line is not UTF-8"))?;
            let size = usize::from_str_radix(size_line.trim().split(';').next().unwrap_or(""), 16)
                .map_err(|_| protocol(format!("bad chunk size {size_line:?}")))?;
            if size > MAX_BODY {
                return Err(protocol(format!("chunk of {size} bytes exceeds the cap")));
            }
            self.raw.drain(..eol + 2);
            if size == 0 {
                self.done = true;
            } else {
                self.pending = size;
            }
        }
        // Surface completed lines.
        while let Some(newline) = self.decoded.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.decoded.drain(..=newline).collect();
            let line = String::from_utf8(line).map_err(|_| protocol("line is not UTF-8"))?;
            lines.push(line.trim_end_matches(['\n', '\r']).to_string());
        }
        Ok(())
    }
}

/// Issues `GET path` against `addr` and feeds each `\n`-terminated line
/// of the (chunked or fixed-length) response body to `on_line` as it
/// arrives. `on_line` returning `false` disconnects early. Returns the
/// response status; on a non-200 status the body is consumed without
/// calling `on_line`.
///
/// # Errors
///
/// Returns [`ServiceError::Io`] when the connection fails and
/// [`ServiceError::Protocol`] on a malformed response.
pub fn stream_lines<A: ToSocketAddrs>(
    addr: A,
    path: &str,
    mut on_line: impl FnMut(&str) -> bool,
) -> Result<u16, ServiceError> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: neurohammer\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;

    // Read up to the end of the response head.
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(end) = find_head_end(&buffer) {
            break end;
        }
        if buffer.len() > MAX_HEAD {
            return Err(protocol("response head exceeds the cap"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(protocol("connection closed mid-head"));
        }
        buffer.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buffer[..head_end].to_vec())
        .map_err(|_| protocol("head is not UTF-8"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| protocol(format!("bad status line {status_line:?}")))?;
    let chunked = head.lines().skip(1).any(|line| {
        line.split_once(':').is_some_and(|(name, value)| {
            name.trim().eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
        })
    });
    let deliver = status == 200;

    if chunked {
        let mut decoder = ChunkDecoder::new(&buffer[head_end..]);
        let mut lines = Vec::new();
        decoder.feed(&[], &mut lines)?;
        loop {
            for line in lines.drain(..) {
                if deliver && !on_line(&line) {
                    return Ok(status);
                }
            }
            if decoder.done {
                return Ok(status);
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(protocol("connection closed mid-stream"));
            }
            decoder.feed(&chunk[..n], &mut lines)?;
        }
    }

    // Fixed-length (or until-close) body: gather, then split.
    let length = content_length(&head)?;
    let mut body = buffer[head_end..].to_vec();
    while body.len() < length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    if length > 0 {
        body.truncate(length);
    }
    let body = String::from_utf8(body).map_err(|_| protocol("body is not UTF-8"))?;
    if deliver {
        for line in body.lines() {
            if !on_line(line) {
                break;
            }
        }
    }
    Ok(status)
}

/// One parsed HTTP response, as returned by [`call_with`].
#[derive(Debug, Clone)]
pub struct Response {
    /// The response status code.
    pub status: u16,
    /// Response headers as `(lower-cased name, trimmed value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Decoded UTF-8 body.
    pub body: String,
}

impl Response {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request to `addr` and returns `(status, body)`.
///
/// This is the whole client side of the protocol: the worker binary and
/// the integration tests drive the daemon through it.
///
/// # Errors
///
/// Returns [`ServiceError::Io`] when the connection fails and
/// [`ServiceError::Protocol`] on a malformed response.
pub fn call<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), ServiceError> {
    call_with(addr, method, path, body, &[]).map(|r| (r.status, r.body))
}

/// [`call`] with extra request headers, returning the full [`Response`]
/// (status, headers and body) — the worker uses it to propagate its
/// trace context, and tests to check content types.
///
/// # Errors
///
/// Returns [`ServiceError::Io`] when the connection fails and
/// [`ServiceError::Protocol`] on a malformed response.
pub fn call_with<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra: &[(&str, &str)],
) -> Result<Response, ServiceError> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: neurohammer\r\nContent-Type: application/json\r\n\
         Content-Length: {length}\r\nConnection: close\r\n",
        length = body.len(),
    );
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    write!(stream, "{head}\r\n{body}")?;
    stream.flush()?;
    let (head, body) = read_message(&mut stream)?;
    let status_line = head.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| protocol(format!("bad status line {status_line:?}")))?;
    Ok(Response {
        status,
        headers: parse_headers(&head),
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trips_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            write_response(&mut stream, 200, "application/json", &request.body).unwrap();
            request
        });
        let (status, body) = call(addr, "post", "/jobs?verbose=1", Some("{\"spec\": 1}")).unwrap();
        let request = served.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"spec\": 1}");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/jobs");
    }

    #[test]
    fn empty_bodies_and_missing_content_length_are_fine() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            write_response(&mut stream, 404, "text/plain", "nope").unwrap();
            request
        });
        let (status, body) = call(addr, "GET", "/jobs/7", None).unwrap();
        assert_eq!((status, body.as_str()), (404, "nope"));
        assert_eq!(served.join().unwrap().body, "");
    }

    #[test]
    fn chunk_decoder_surfaces_lines_arriving_with_the_terminator() {
        // The whole body — payload chunk AND terminating zero chunk — in
        // a single feed: every line must still come out. (Regression: the
        // decoder used to return on `done` before splitting lines, losing
        // whatever the final read carried.)
        let mut decoder = ChunkDecoder::new(b"");
        let mut lines = Vec::new();
        decoder
            .feed(
                b"1b\r\nfirst line\nsecond line\nend\n\r\n0\r\n\r\n",
                &mut lines,
            )
            .unwrap();
        assert!(decoder.done);
        assert_eq!(lines, ["first line", "second line", "end"]);

        // Byte-by-byte delivery decodes identically.
        let mut trickle = ChunkDecoder::new(b"");
        let mut dripped = Vec::new();
        for byte in b"1b\r\nfirst line\nsecond line\nend\n\r\n0\r\n\r\n" {
            trickle.feed(&[*byte], &mut dripped).unwrap();
        }
        assert!(trickle.done);
        assert_eq!(dripped, ["first line", "second line", "end"]);
    }

    #[test]
    fn stream_lines_delivers_a_single_write_response() {
        // Head, chunks and terminator flushed as one TCP write: the
        // client must still deliver every line (regression for the
        // all-in-one-read race).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream).unwrap();
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/jsonl\r\n\
                      Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n\
                      8\r\none\ntwo\n\r\n6\r\nthree\n\r\n0\r\n\r\n",
                )
                .unwrap();
            stream.flush().unwrap();
        });
        let mut lines = Vec::new();
        let status = stream_lines(addr, "/events", |line| {
            lines.push(line.to_string());
            true
        })
        .unwrap();
        served.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(lines, ["one", "two", "three"]);
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        assert!(content_length("POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n").is_err());
        assert!(content_length("POST / HTTP/1.1\r\nContent-Length: ten\r\n").is_err());
        assert_eq!(
            content_length("POST / HTTP/1.1\r\ncontent-LENGTH: 12\r\n").unwrap(),
            12
        );
    }
}
