//! A minimal HTTP/1.1 reader, writer and client on `std::net`.
//!
//! Just enough of the protocol for the campaign service: request line +
//! headers + `Content-Length`-delimited body on the way in, a fixed
//! `Connection: close` response on the way out — one request per
//! connection, no keep-alive, no chunked encoding, no TLS. Both the
//! server and the worker/test client speak through this module, so a
//! plain `curl` works against the daemon too.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::ServiceError;

/// Hard cap on request/response bodies (64 MiB) — far above any campaign
/// report, and enough to reject a stream that is clearly not ours.
const MAX_BODY: usize = 64 << 20;

/// Hard cap on the request head (64 KiB of request line + headers).
const MAX_HEAD: usize = 64 << 10;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, `DELETE`, ...), upper-cased by the
    /// client.
    pub method: String,
    /// Request target path, query string stripped (`/jobs/1/report`).
    pub path: String,
    /// Decoded UTF-8 body (empty when the request carried none).
    pub body: String,
}

fn protocol(what: impl Into<String>) -> ServiceError {
    ServiceError::Protocol(what.into())
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|pos| pos + 4)
}

fn content_length(head: &str) -> Result<usize, ServiceError> {
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let length: usize = value
                .trim()
                .parse()
                .map_err(|_| protocol(format!("bad Content-Length {:?}", value.trim())))?;
            if length > MAX_BODY {
                return Err(protocol(format!("body of {length} bytes exceeds the cap")));
            }
            return Ok(length);
        }
    }
    Ok(0)
}

fn read_message(stream: &mut TcpStream) -> Result<(String, String), ServiceError> {
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(end) = find_head_end(&buffer) {
            break end;
        }
        if buffer.len() > MAX_HEAD {
            return Err(protocol("request head exceeds the cap"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(protocol("connection closed mid-message"));
        }
        buffer.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buffer[..head_end].to_vec())
        .map_err(|_| protocol("head is not UTF-8"))?;
    let length = content_length(&head)?;
    let mut body = buffer[head_end..].to_vec();
    while body.len() < length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(protocol("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(length);
    let body = String::from_utf8(body).map_err(|_| protocol("body is not UTF-8"))?;
    Ok((head, body))
}

/// Reads one request from a connection.
///
/// # Errors
///
/// Returns [`ServiceError::Io`] on socket failures and
/// [`ServiceError::Protocol`] on malformed HTTP.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServiceError> {
    let (head, body) = read_message(stream)?;
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(protocol(format!("bad request line {request_line:?}")));
    };
    let path = target.split('?').next().unwrap_or(target);
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
    })
}

/// The reason phrase for the handful of status codes the service uses.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        _ => "Internal Server Error",
    }
}

/// Writes one `Connection: close` response and flushes the stream.
///
/// # Errors
///
/// Returns the socket error, if any.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {length}\r\nConnection: close\r\n\r\n{body}",
        reason = status_reason(status),
        length = body.len(),
    )?;
    stream.flush()
}

/// Sends one request to `addr` and returns `(status, body)`.
///
/// This is the whole client side of the protocol: the worker binary and
/// the integration tests drive the daemon through it.
///
/// # Errors
///
/// Returns [`ServiceError::Io`] when the connection fails and
/// [`ServiceError::Protocol`] on a malformed response.
pub fn call<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), ServiceError> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: neurohammer\r\nContent-Type: application/json\r\n\
         Content-Length: {length}\r\nConnection: close\r\n\r\n{body}",
        length = body.len(),
    )?;
    stream.flush()?;
    let (head, body) = read_message(&mut stream)?;
    let status_line = head.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| protocol(format!("bad status line {status_line:?}")))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trips_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            write_response(&mut stream, 200, "application/json", &request.body).unwrap();
            request
        });
        let (status, body) = call(addr, "post", "/jobs?verbose=1", Some("{\"spec\": 1}")).unwrap();
        let request = served.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"spec\": 1}");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/jobs");
    }

    #[test]
    fn empty_bodies_and_missing_content_length_are_fine() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            write_response(&mut stream, 404, "text/plain", "nope").unwrap();
            request
        });
        let (status, body) = call(addr, "GET", "/jobs/7", None).unwrap();
        assert_eq!((status, body.as_str()), (404, "nope"));
        assert_eq!(served.join().unwrap().body, "");
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        assert!(content_length("POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n").is_err());
        assert!(content_length("POST / HTTP/1.1\r\nContent-Length: ten\r\n").is_err());
        assert_eq!(
            content_length("POST / HTTP/1.1\r\ncontent-LENGTH: 12\r\n").unwrap(),
            12
        );
    }
}
