//! The passive memristive crossbar array: a grid of VCM cells.
//!
//! Since the struct-of-arrays refactor the array no longer stores one
//! `JartDevice` per cell; the whole grid's state lives in a single
//! [`CellBank`] (row-major lane order) shared with the integration kernel,
//! and [`CrossbarArray::cell`]/[`CrossbarArray::cell_mut`] hand out borrowed
//! [`CellRef`]/[`CellMut`] views with the familiar per-device method
//! surface. Engines that want the whole array at once go through
//! [`CrossbarArray::bank`]/[`CrossbarArray::bank_mut`] and
//! [`rram_jart::kernel::step_lanes`].

use serde::{Deserialize, Serialize};

use crate::scheme::CellAddress;
use rram_jart::{CellBank, CellMut, CellRef, DeviceParams, DigitalState};
use rram_units::{Ohms, Volts};

/// A rows × cols array of memristive cells backed by one
/// struct-of-arrays [`CellBank`] (row-major).
///
/// By default every cell shares the nominal `params`; arrays with
/// device-to-device variability install a per-cell parameter table with
/// [`CrossbarArray::set_params_table`], after which every view, scalar step
/// and batched kernel call resolves each cell's own parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    params: DeviceParams,
    /// Per-cell parameters (row-major), when the array is heterogeneous.
    params_table: Option<Vec<DeviceParams>>,
    bank: CellBank,
}

impl CrossbarArray {
    /// Creates an array with every cell in the HRS.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize, params: DeviceParams) -> Self {
        assert!(rows > 0 && cols > 0, "array must have at least one cell");
        let bank = CellBank::new(rows * cols, &params);
        CrossbarArray {
            rows,
            cols,
            params,
            params_table: None,
            bank,
        }
    }

    /// Creates an array and initialises every cell to the given state.
    pub fn filled(rows: usize, cols: usize, params: DeviceParams, state: DigitalState) -> Self {
        let mut array = CrossbarArray::new(rows, cols, params);
        for lane in 0..array.bank.lanes() {
            array.bank.force_state(lane, state, &array.params);
        }
        array
    }

    /// Number of word lines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.bank.lanes()
    }

    /// Returns `true` if the array has no cells (never true for a
    /// constructed array).
    pub fn is_empty(&self) -> bool {
        self.bank.lanes() == 0
    }

    /// The nominal device parameters — shared by every cell unless a
    /// per-cell table was installed (see [`CrossbarArray::set_params_table`]).
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// The per-cell parameter table (row-major), when the array is
    /// heterogeneous.
    pub fn params_table(&self) -> Option<&[DeviceParams]> {
        self.params_table.as_deref()
    }

    /// The parameters governing one cell: its table entry when a table is
    /// installed, the shared nominal set otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn cell_params(&self, address: CellAddress) -> &DeviceParams {
        let lane = self.index(address);
        self.lane_params(lane)
    }

    /// Installs a per-cell parameter table (row-major) and re-initialises
    /// every cell to the HRS at ambient under its new parameters — the
    /// Monte Carlo entry point: sample a table, install it, then run the
    /// attack preparation as usual.
    ///
    /// # Panics
    ///
    /// Panics if the table length does not match the cell count.
    pub fn set_params_table(&mut self, table: Vec<DeviceParams>) {
        assert_eq!(
            table.len(),
            self.bank.lanes(),
            "params table length mismatch"
        );
        for (lane, params) in table.iter().enumerate() {
            self.bank.force_state(lane, DigitalState::Hrs, params);
        }
        // The kernel's per-lane operating-point cache is keyed on (v, n)
        // under the *current* parameters; swapping the table invalidates
        // every cached solve.
        self.bank.invalidate_op_cache();
        self.params_table = Some(table);
    }

    /// Resolves the parameters of one lane.
    #[inline]
    fn lane_params(&self, lane: usize) -> &DeviceParams {
        match &self.params_table {
            Some(table) => &table[lane],
            None => &self.params,
        }
    }

    /// The struct-of-arrays state bank (row-major lane order).
    pub fn bank(&self) -> &CellBank {
        &self.bank
    }

    /// Mutable access to the state bank, for engines that integrate all
    /// cells in one [`rram_jart::kernel::step_lanes`] call.
    pub fn bank_mut(&mut self) -> &mut CellBank {
        &mut self.bank
    }

    fn index(&self, address: CellAddress) -> usize {
        assert!(
            address.row < self.rows && address.col < self.cols,
            "cell {address:?} outside a {}x{} array",
            self.rows,
            self.cols
        );
        address.row * self.cols + address.col
    }

    /// Read-only view of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn cell(&self, address: CellAddress) -> CellRef<'_> {
        let lane = self.index(address);
        CellRef::new(self.lane_params(lane), &self.bank, lane)
    }

    /// Mutable view of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn cell_mut(&mut self, address: CellAddress) -> CellMut<'_> {
        let lane = self.index(address);
        let params = match &self.params_table {
            Some(table) => &table[lane],
            None => &self.params,
        };
        CellMut::new(params, &mut self.bank, lane)
    }

    /// Iterates over `(address, cell)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (CellAddress, CellRef<'_>)> {
        (0..self.bank.lanes()).map(move |lane| {
            (
                CellAddress::new(lane / self.cols, lane % self.cols),
                CellRef::new(self.lane_params(lane), &self.bank, lane),
            )
        })
    }

    /// Visits every cell mutably in row-major order (the struct-of-arrays
    /// bank cannot hand out coexisting mutable per-cell views, so mutable
    /// iteration takes a closure).
    pub fn for_each_cell_mut(&mut self, mut f: impl FnMut(CellAddress, CellMut<'_>)) {
        let cols = self.cols;
        let shared = &self.params;
        let table = self.params_table.as_deref();
        let bank = &mut self.bank;
        for lane in 0..bank.lanes() {
            let address = CellAddress::new(lane / cols, lane % cols);
            let params = match table {
                Some(table) => &table[lane],
                None => shared,
            };
            f(address, CellMut::new(params, bank, lane));
        }
    }

    /// Digital read-out of the whole array, row-major.
    pub fn read_all(&self) -> Vec<DigitalState> {
        self.bank.digital().to_vec()
    }

    /// Digital read-out of the whole array into a caller-owned buffer
    /// (cleared first), so hot loops reuse their allocation.
    pub fn read_all_into(&self, out: &mut Vec<DigitalState>) {
        out.clear();
        out.extend_from_slice(self.bank.digital());
    }

    /// Digital state of one cell.
    pub fn read(&self, address: CellAddress) -> DigitalState {
        self.cell(address).digital_state()
    }

    /// Read resistance of one cell at the given read voltage.
    pub fn read_resistance(&self, address: CellAddress, v_read: Volts) -> Ohms {
        self.cell(address).read_resistance(v_read)
    }

    /// Exported filament temperatures of all cells, row-major (the hub's
    /// input vector) — a direct borrow of the bank's temperature lane, so
    /// reading it costs nothing.
    pub fn temperatures(&self) -> &[f64] {
        self.bank.temperatures()
    }

    /// Exported filament temperatures of all cells as an owned vector.
    pub fn exported_temperatures(&self) -> Vec<f64> {
        self.bank.temperatures().to_vec()
    }

    /// Exported filament temperatures into a caller-owned buffer (cleared
    /// first), so hot loops reuse their allocation.
    pub fn exported_temperatures_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(self.bank.temperatures());
    }

    /// Writes the crosstalk ΔT of every cell from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the cell count.
    pub fn import_crosstalk(&mut self, deltas: &[f64]) {
        self.bank.import_crosstalk(deltas);
    }

    /// Integrates every cell by `dt` under its per-cell voltage (row-major)
    /// in one kernel call — the batched engine's hot path.
    ///
    /// # Panics
    ///
    /// Panics if `voltages.len()` does not match the cell count or `dt` is
    /// negative.
    pub fn step_lanes(&mut self, voltages: &[f64], dt: rram_units::Seconds) {
        self.step_lanes_mode(voltages, dt, rram_jart::MathMode::Exact);
    }

    /// [`CrossbarArray::step_lanes`] with an explicit
    /// [`rram_jart::MathMode`] — `Exact` is bit-identical to `step_lanes`,
    /// `Fast` is the batched engine's opt-in fast-math tier.
    ///
    /// # Panics
    ///
    /// Panics if `voltages.len()` does not match the cell count or `dt` is
    /// negative.
    pub fn step_lanes_mode(
        &mut self,
        voltages: &[f64],
        dt: rram_units::Seconds,
        mode: rram_jart::MathMode,
    ) {
        match &self.params_table {
            Some(table) => rram_jart::kernel::step_lanes_mode(
                &table[..],
                voltages,
                &mut self.bank.view_mut(),
                dt,
                mode,
            ),
            None => rram_jart::kernel::step_lanes_mode(
                &self.params,
                voltages,
                &mut self.bank.view_mut(),
                dt,
                mode,
            ),
        }
    }

    /// Like [`CrossbarArray::step_lanes`], with the lane range split across
    /// `threads` scoped worker threads. Bit-identical to the
    /// single-threaded call for any thread count (lanes are independent
    /// within a sub-step); `threads <= 1` does not spawn at all.
    ///
    /// # Panics
    ///
    /// Panics if `voltages.len()` does not match the cell count or `dt` is
    /// negative.
    pub fn step_lanes_threaded(
        &mut self,
        voltages: &[f64],
        dt: rram_units::Seconds,
        threads: usize,
    ) {
        self.step_lanes_threaded_mode(voltages, dt, threads, rram_jart::MathMode::Exact);
    }

    /// [`CrossbarArray::step_lanes_threaded`] with an explicit
    /// [`rram_jart::MathMode`]; bit-identical to
    /// [`CrossbarArray::step_lanes_mode`] at the same mode for any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `voltages.len()` does not match the cell count or `dt` is
    /// negative.
    pub fn step_lanes_threaded_mode(
        &mut self,
        voltages: &[f64],
        dt: rram_units::Seconds,
        threads: usize,
        mode: rram_jart::MathMode,
    ) {
        match &self.params_table {
            Some(table) => rram_jart::kernel::step_lanes_threaded_mode(
                &table[..],
                voltages,
                self.bank.view_mut(),
                dt,
                threads,
                mode,
            ),
            None => rram_jart::kernel::step_lanes_threaded_mode(
                &self.params,
                voltages,
                self.bank.view_mut(),
                dt,
                threads,
                mode,
            ),
        }
    }

    /// Integrates every cell by `dt` under its per-cell voltage with the
    /// drift rate, temperature and cell current served by a caller-supplied
    /// reduced-order `model(lane, v_cell, ΔT, n)` closure instead of the
    /// full operating-point solve — the surrogate backend's hot path (see
    /// [`rram_jart::kernel::step_lanes_surrogate`] for the exact contract
    /// and documented limitations).
    ///
    /// # Panics
    ///
    /// Panics if `voltages.len()` does not match the cell count or `dt` is
    /// negative.
    pub fn step_lanes_surrogate<F>(&mut self, voltages: &[f64], dt: rram_units::Seconds, model: F)
    where
        F: FnMut(usize, f64, f64, f64) -> (f64, f64, f64),
    {
        match &self.params_table {
            Some(table) => rram_jart::kernel::step_lanes_surrogate(
                &table[..],
                voltages,
                &mut self.bank.view_mut(),
                dt,
                model,
            ),
            None => rram_jart::kernel::step_lanes_surrogate(
                &self.params,
                voltages,
                &mut self.bank.view_mut(),
                dt,
                model,
            ),
        }
    }

    /// Advances every cell by `dt` with all lines grounded — bit-identical
    /// to [`CrossbarArray::step_lanes`] with an all-zero voltage vector,
    /// without needing the voltage buffer at all. The batched engine's gap
    /// phase runs on this.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn relax_lanes(&mut self, dt: rram_units::Seconds) {
        match &self.params_table {
            Some(table) => {
                rram_jart::kernel::relax_lanes(&table[..], &mut self.bank.view_mut(), dt)
            }
            None => rram_jart::kernel::relax_lanes(&self.params, &mut self.bank.view_mut(), dt),
        }
    }

    /// Number of cells whose digital state differs from `reference`
    /// (row-major). Used to count attack-induced bit-flips.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len()` does not match the cell count.
    pub fn count_differences(&self, reference: &[DigitalState]) -> usize {
        assert_eq!(
            reference.len(),
            self.bank.lanes(),
            "reference length mismatch"
        );
        self.bank
            .digital()
            .iter()
            .zip(reference.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Addresses of the cells whose state differs from `reference`.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len()` does not match the cell count.
    pub fn changed_cells(&self, reference: &[DigitalState]) -> Vec<CellAddress> {
        assert_eq!(
            reference.len(),
            self.bank.lanes(),
            "reference length mismatch"
        );
        self.bank
            .digital()
            .iter()
            .zip(reference.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| CellAddress::new(i / self.cols, i % self.cols))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> CrossbarArray {
        CrossbarArray::new(3, 4, DeviceParams::default())
    }

    #[test]
    fn new_array_is_all_hrs() {
        let a = array();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 4);
        assert_eq!(a.len(), 12);
        assert!(!a.is_empty());
        assert!(a.read_all().iter().all(|&s| s == DigitalState::Hrs));
    }

    #[test]
    fn filled_array_is_all_lrs() {
        let a = CrossbarArray::filled(2, 2, DeviceParams::default(), DigitalState::Lrs);
        assert!(a.read_all().iter().all(|&s| s == DigitalState::Lrs));
    }

    #[test]
    fn cell_access_round_trips() {
        let mut a = array();
        a.cell_mut(CellAddress::new(1, 2))
            .force_state(DigitalState::Lrs);
        assert_eq!(a.read(CellAddress::new(1, 2)), DigitalState::Lrs);
        assert_eq!(a.read(CellAddress::new(1, 1)), DigitalState::Hrs);
    }

    #[test]
    fn iter_visits_every_cell_once() {
        let a = array();
        let addresses: Vec<CellAddress> = a.iter().map(|(addr, _)| addr).collect();
        assert_eq!(addresses.len(), 12);
        assert_eq!(addresses[0], CellAddress::new(0, 0));
        assert_eq!(addresses[11], CellAddress::new(2, 3));
    }

    #[test]
    fn for_each_cell_mut_visits_every_cell() {
        let mut a = array();
        a.for_each_cell_mut(|_, mut cell| cell.force_state(DigitalState::Lrs));
        assert!(a.read_all().iter().all(|&s| s == DigitalState::Lrs));
    }

    #[test]
    fn count_differences_detects_flips() {
        let mut a = array();
        let reference = a.read_all();
        assert_eq!(a.count_differences(&reference), 0);
        a.cell_mut(CellAddress::new(0, 1))
            .force_state(DigitalState::Lrs);
        a.cell_mut(CellAddress::new(2, 3))
            .force_state(DigitalState::Lrs);
        assert_eq!(a.count_differences(&reference), 2);
        let changed = a.changed_cells(&reference);
        assert_eq!(
            changed,
            vec![CellAddress::new(0, 1), CellAddress::new(2, 3)]
        );
    }

    #[test]
    fn crosstalk_import_reaches_cells() {
        let mut a = array();
        let mut deltas = vec![0.0; 12];
        deltas[5] = 42.0;
        a.import_crosstalk(&deltas);
        assert_eq!(a.cell(CellAddress::new(1, 1)).crosstalk_delta().0, 42.0);
        assert_eq!(a.cell(CellAddress::new(0, 0)).crosstalk_delta().0, 0.0);
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let mut a = array();
        a.cell_mut(CellAddress::new(0, 0))
            .force_state(DigitalState::Lrs);
        let mut temps = Vec::new();
        a.exported_temperatures_into(&mut temps);
        assert_eq!(temps, a.exported_temperatures());
        let mut states = vec![DigitalState::Lrs; 99]; // stale garbage
        a.read_all_into(&mut states);
        assert_eq!(states, a.read_all());
        assert_eq!(a.temperatures().len(), 12);
    }

    #[test]
    fn read_resistance_separates_states() {
        let mut a = array();
        a.cell_mut(CellAddress::new(0, 0))
            .force_state(DigitalState::Lrs);
        let r_lrs = a.read_resistance(CellAddress::new(0, 0), Volts(0.2));
        let r_hrs = a.read_resistance(CellAddress::new(0, 1), Volts(0.2));
        assert!(r_hrs.0 > 20.0 * r_lrs.0);
    }

    #[test]
    fn params_table_governs_views_and_stepping() {
        let nominal = DeviceParams::default();
        let mut a = CrossbarArray::new(2, 2, nominal.clone());
        // Give one cell a much wider filament: more current, faster SET.
        let mut table = vec![nominal.clone(); 4];
        table[3].filament_radius = 2.0 * nominal.filament_radius;
        a.set_params_table(table);

        assert_eq!(
            a.cell_params(CellAddress::new(1, 1)).filament_radius,
            2.0 * nominal.filament_radius
        );
        assert_eq!(
            a.cell_params(CellAddress::new(0, 0)).filament_radius,
            nominal.filament_radius
        );
        assert_eq!(a.params_table().unwrap().len(), 4);
        // Installing the table re-initialised the array to all-HRS.
        assert!(a.read_all().iter().all(|&s| s == DigitalState::Hrs));

        // Batched stepping resolves the per-cell parameters: the wide-
        // filament cell progresses faster under the same bias.
        a.step_lanes(&[1.05; 4], rram_units::Seconds(2e-9));
        let narrow = a.cell(CellAddress::new(0, 0)).concentration();
        let wide = a.cell(CellAddress::new(1, 1)).concentration();
        assert!(wide > narrow, "wide {wide} vs narrow {narrow}");

        // The scalar path resolves the same parameters: stepping the wide
        // cell through its CellMut view matches a standalone device with
        // the same parameter set, bit for bit.
        let mut reference =
            rram_jart::JartDevice::new(a.cell_params(CellAddress::new(1, 1)).clone());
        let mut fresh = CrossbarArray::new(2, 2, nominal.clone());
        fresh.set_params_table(a.params_table().unwrap().to_vec());
        fresh
            .cell_mut(CellAddress::new(1, 1))
            .step(Volts(1.05), rram_units::Seconds(2e-9));
        reference.step(Volts(1.05), rram_units::Seconds(2e-9));
        assert_eq!(
            fresh.cell(CellAddress::new(1, 1)).concentration().to_bits(),
            reference.concentration().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "params table length mismatch")]
    fn wrong_table_length_panics() {
        let mut a = array();
        a.set_params_table(vec![DeviceParams::default(); 3]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_access_panics() {
        let a = array();
        let _ = a.cell(CellAddress::new(5, 0));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_array_panics() {
        let _ = CrossbarArray::new(0, 3, DeviceParams::default());
    }
}
