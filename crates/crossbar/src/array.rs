//! The passive memristive crossbar array: a grid of VCM cells.

use serde::{Deserialize, Serialize};

use crate::scheme::CellAddress;
use rram_jart::{DeviceParams, DigitalState, JartDevice};
use rram_units::{Kelvin, Ohms, Volts};

/// A rows × cols array of memristive cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    cells: Vec<JartDevice>,
}

impl CrossbarArray {
    /// Creates an array with every cell in the HRS.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize, params: DeviceParams) -> Self {
        assert!(rows > 0 && cols > 0, "array must have at least one cell");
        let cells = (0..rows * cols)
            .map(|_| JartDevice::new(params.clone()))
            .collect();
        CrossbarArray { rows, cols, cells }
    }

    /// Creates an array and initialises every cell to the given state.
    pub fn filled(rows: usize, cols: usize, params: DeviceParams, state: DigitalState) -> Self {
        let mut array = CrossbarArray::new(rows, cols, params);
        for cell in &mut array.cells {
            cell.force_state(state);
        }
        array
    }

    /// Number of word lines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the array has no cells (never true for a
    /// constructed array).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn index(&self, address: CellAddress) -> usize {
        assert!(
            address.row < self.rows && address.col < self.cols,
            "cell {address:?} outside a {}x{} array",
            self.rows,
            self.cols
        );
        address.row * self.cols + address.col
    }

    /// Immutable access to a cell.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn cell(&self, address: CellAddress) -> &JartDevice {
        &self.cells[self.index(address)]
    }

    /// Mutable access to a cell.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn cell_mut(&mut self, address: CellAddress) -> &mut JartDevice {
        let idx = self.index(address);
        &mut self.cells[idx]
    }

    /// Iterates over `(address, cell)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (CellAddress, &JartDevice)> {
        self.cells
            .iter()
            .enumerate()
            .map(move |(i, cell)| (CellAddress::new(i / self.cols, i % self.cols), cell))
    }

    /// Iterates mutably over `(address, cell)` pairs in row-major order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (CellAddress, &mut JartDevice)> {
        let cols = self.cols;
        self.cells
            .iter_mut()
            .enumerate()
            .map(move |(i, cell)| (CellAddress::new(i / cols, i % cols), cell))
    }

    /// Digital read-out of the whole array, row-major.
    pub fn read_all(&self) -> Vec<DigitalState> {
        self.cells.iter().map(|c| c.digital_state()).collect()
    }

    /// Digital state of one cell.
    pub fn read(&self, address: CellAddress) -> DigitalState {
        self.cell(address).digital_state()
    }

    /// Read resistance of one cell at the given read voltage.
    pub fn read_resistance(&self, address: CellAddress, v_read: Volts) -> Ohms {
        self.cell(address).read_resistance(v_read)
    }

    /// Exported filament temperatures of all cells, row-major (the hub's
    /// input vector).
    pub fn exported_temperatures(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| c.exported_temperature().0)
            .collect()
    }

    /// Writes the crosstalk ΔT of every cell from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the cell count.
    pub fn import_crosstalk(&mut self, deltas: &[f64]) {
        assert_eq!(deltas.len(), self.cells.len(), "delta length mismatch");
        for (cell, &dt) in self.cells.iter_mut().zip(deltas.iter()) {
            cell.set_crosstalk_delta(Kelvin(dt));
        }
    }

    /// Number of cells whose digital state differs from `reference`
    /// (row-major). Used to count attack-induced bit-flips.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len()` does not match the cell count.
    pub fn count_differences(&self, reference: &[DigitalState]) -> usize {
        assert_eq!(
            reference.len(),
            self.cells.len(),
            "reference length mismatch"
        );
        self.read_all()
            .iter()
            .zip(reference.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Addresses of the cells whose state differs from `reference`.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len()` does not match the cell count.
    pub fn changed_cells(&self, reference: &[DigitalState]) -> Vec<CellAddress> {
        assert_eq!(
            reference.len(),
            self.cells.len(),
            "reference length mismatch"
        );
        self.read_all()
            .iter()
            .zip(reference.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| CellAddress::new(i / self.cols, i % self.cols))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> CrossbarArray {
        CrossbarArray::new(3, 4, DeviceParams::default())
    }

    #[test]
    fn new_array_is_all_hrs() {
        let a = array();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 4);
        assert_eq!(a.len(), 12);
        assert!(!a.is_empty());
        assert!(a.read_all().iter().all(|&s| s == DigitalState::Hrs));
    }

    #[test]
    fn filled_array_is_all_lrs() {
        let a = CrossbarArray::filled(2, 2, DeviceParams::default(), DigitalState::Lrs);
        assert!(a.read_all().iter().all(|&s| s == DigitalState::Lrs));
    }

    #[test]
    fn cell_access_round_trips() {
        let mut a = array();
        a.cell_mut(CellAddress::new(1, 2))
            .force_state(DigitalState::Lrs);
        assert_eq!(a.read(CellAddress::new(1, 2)), DigitalState::Lrs);
        assert_eq!(a.read(CellAddress::new(1, 1)), DigitalState::Hrs);
    }

    #[test]
    fn iter_visits_every_cell_once() {
        let a = array();
        let addresses: Vec<CellAddress> = a.iter().map(|(addr, _)| addr).collect();
        assert_eq!(addresses.len(), 12);
        assert_eq!(addresses[0], CellAddress::new(0, 0));
        assert_eq!(addresses[11], CellAddress::new(2, 3));
    }

    #[test]
    fn count_differences_detects_flips() {
        let mut a = array();
        let reference = a.read_all();
        assert_eq!(a.count_differences(&reference), 0);
        a.cell_mut(CellAddress::new(0, 1))
            .force_state(DigitalState::Lrs);
        a.cell_mut(CellAddress::new(2, 3))
            .force_state(DigitalState::Lrs);
        assert_eq!(a.count_differences(&reference), 2);
        let changed = a.changed_cells(&reference);
        assert_eq!(
            changed,
            vec![CellAddress::new(0, 1), CellAddress::new(2, 3)]
        );
    }

    #[test]
    fn crosstalk_import_reaches_cells() {
        let mut a = array();
        let mut deltas = vec![0.0; 12];
        deltas[5] = 42.0;
        a.import_crosstalk(&deltas);
        assert_eq!(a.cell(CellAddress::new(1, 1)).crosstalk_delta().0, 42.0);
        assert_eq!(a.cell(CellAddress::new(0, 0)).crosstalk_delta().0, 0.0);
    }

    #[test]
    fn read_resistance_separates_states() {
        let mut a = array();
        a.cell_mut(CellAddress::new(0, 0))
            .force_state(DigitalState::Lrs);
        let r_lrs = a.read_resistance(CellAddress::new(0, 0), Volts(0.2));
        let r_hrs = a.read_resistance(CellAddress::new(0, 1), Volts(0.2));
        assert!(r_hrs.0 > 20.0 * r_lrs.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_access_panics() {
        let a = array();
        let _ = a.cell(CellAddress::new(5, 0));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_array_panics() {
        let _ = CrossbarArray::new(0, 3, DeviceParams::default());
    }
}
