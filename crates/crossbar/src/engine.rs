//! The fast (ideal-driver) pulse engine.
//!
//! Long hammer campaigns apply 10²–10⁵ identical pulses; simulating each one
//! through the full MNA solver would dominate the runtime without changing
//! the outcome, because with ideal line drivers the voltage across every cell
//! follows directly from the write scheme. This engine exploits that:
//!
//! 1. the scheme determines each cell's voltage,
//! 2. every cell integrates its own state/temperature for the sub-step,
//! 3. the crosstalk hub redistributes the exported filament temperatures.
//!
//! The sub-step length is chosen from the hub's thermal time constant so the
//! first-order coupling lag is resolved. The `detailed` module provides the
//! MNA-backed reference engine; `tests/engine_agreement.rs` (workspace root)
//! checks the two agree when line resistance is negligible.

use serde::{Deserialize, Serialize};

use crate::array::CrossbarArray;
use crate::backend::{HammerBackend, ThermalReadout};
use crate::crosstalk::CrosstalkHub;
use crate::scheme::{CellAddress, WriteScheme};
use rram_jart::{DeviceParams, DigitalState};
use rram_units::{Kelvin, Seconds, Volts};

/// Configuration of the pulse engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Write scheme used for every access.
    pub scheme: WriteScheme,
    /// Nominal write amplitude (V_SET of the paper).
    pub v_write: Volts,
    /// Maximum sub-step used to resolve the crosstalk lag, s.
    pub max_substep: Seconds,
    /// Ambient temperature, K.
    pub ambient: Kelvin,
    /// Worker threads for the batched engine's lane integration (1 =
    /// single-threaded). Results are bit-identical for any value; other
    /// engines ignore it.
    pub threads: usize,
    /// Opt-in fast-math tier for the batched engine: the kernel swaps
    /// `exp`/`sinh`/`asinh` for the deterministic polynomial versions in
    /// [`rram_jart::fastmath`]. Trajectories are no longer bit-identical to
    /// the exact tier (only tolerance-bounded), so campaign results carry a
    /// distinct fingerprint — like `threads`, other engines ignore it, but
    /// unlike `threads` it *does* change the numbers.
    pub fast_math: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scheme: WriteScheme::HalfVoltage,
            v_write: Volts(rram_units::V_SET),
            max_substep: Seconds(10e-9),
            ambient: Kelvin(300.0),
            threads: 1,
            fast_math: false,
        }
    }
}

impl EngineConfig {
    /// Integration sub-step length in seconds for an active pulse (`true`)
    /// or an idle, all-lines-grounded stretch (`false`).
    ///
    /// Idle periods have no electrical drive; the only dynamics is the
    /// exponential decay of the crosstalk state, which tolerates 10× coarser
    /// steps than an active pulse. Both ideal-driver engines
    /// ([`PulseEngine`] and [`crate::BatchedEngine`]) take their sub-steps
    /// from this one policy, which keeps their `dt` sequences — and
    /// therefore their per-cell trajectories — identical.
    pub fn substep(&self, active: bool) -> f64 {
        if active {
            self.max_substep.0.max(1e-12)
        } else {
            (self.max_substep.0 * 10.0).max(1e-12)
        }
    }
}

/// Snapshot of one cell's thermal/electrical situation, used for tracing the
/// attack phases of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSnapshot {
    /// Cell address.
    pub address: CellAddress,
    /// Applied cell voltage during the last step, V.
    pub voltage: Volts,
    /// Filament temperature, K.
    pub temperature: Kelvin,
    /// Imported crosstalk temperature, K.
    pub crosstalk: Kelvin,
    /// Normalised internal state (0 = HRS, 1 = LRS).
    pub state: f64,
}

/// The ideal-driver pulse engine: array + hub + scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PulseEngine {
    array: CrossbarArray,
    hub: CrosstalkHub,
    config: EngineConfig,
    /// Simulated time elapsed, s.
    elapsed: f64,
}

impl PulseEngine {
    /// Creates an engine around an existing array and hub.
    ///
    /// # Panics
    ///
    /// Panics if the hub dimensions do not match the array.
    pub fn new(array: CrossbarArray, hub: CrosstalkHub, config: EngineConfig) -> Self {
        assert_eq!(array.rows(), hub.rows(), "row count mismatch");
        assert_eq!(array.cols(), hub.cols(), "column count mismatch");
        PulseEngine {
            array,
            hub,
            config,
            elapsed: 0.0,
        }
    }

    /// Convenience constructor: fresh HRS array with the given device
    /// parameters and a synthetic uniform coupling profile.
    pub fn with_uniform_coupling(
        rows: usize,
        cols: usize,
        params: DeviceParams,
        nearest_alpha: f64,
        config: EngineConfig,
    ) -> Self {
        let array = CrossbarArray::new(rows, cols, params);
        let hub = CrosstalkHub::two_ring(rows, cols, nearest_alpha, Seconds(30e-9));
        PulseEngine::new(array, hub, config)
    }

    /// The underlying array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// Mutable access to the array (initialisation, fault injection).
    pub fn array_mut(&mut self) -> &mut CrossbarArray {
        &mut self.array
    }

    /// The crosstalk hub.
    pub fn hub(&self) -> &CrosstalkHub {
        &self.hub
    }

    /// Mutable access to the hub (ablations).
    pub fn hub_mut(&mut self) -> &mut CrosstalkHub {
        &mut self.hub
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Total simulated time, s.
    pub fn elapsed(&self) -> Seconds {
        Seconds(self.elapsed)
    }

    /// Advances the whole array by `duration` with the line bias produced by
    /// selecting `selected` at amplitude `amplitude` (None = all lines
    /// grounded / idle).
    fn advance(&mut self, selected: Option<(CellAddress, Volts)>, duration: Seconds) {
        let mut remaining = duration.0;
        let substep = self.config.substep(selected.is_some());
        let bias = selected.map(|(address, amplitude)| {
            self.config
                .scheme
                .line_bias(self.array.rows(), self.array.cols(), address, amplitude)
        });
        while remaining > 0.0 {
            let dt = remaining.min(substep);
            // Import the hub state, then step every cell under its bias.
            // Both transfers borrow the struct-of-arrays lanes directly, so
            // no sub-step allocates.
            self.array.import_crosstalk(self.hub.deltas());
            self.array.for_each_cell_mut(|address, mut cell| {
                let v = match &bias {
                    Some(b) => b.cell_voltage(address),
                    None => Volts(0.0),
                };
                cell.step(v, Seconds(dt));
            });
            // Redistribute the exported temperatures.
            self.hub
                .update(self.array.temperatures(), self.config.ambient, Seconds(dt));
            remaining -= dt;
            self.elapsed += dt;
        }
    }

    /// Applies one write pulse of the given length to `selected` using the
    /// configured scheme and amplitude. Positive amplitude drives SET.
    pub fn apply_pulse(&mut self, selected: CellAddress, amplitude: Volts, length: Seconds) {
        self.advance(Some((selected, amplitude)), length);
    }

    /// Lets the array idle (all lines grounded) for `duration`; filaments
    /// cool and the crosstalk state decays.
    pub fn idle(&mut self, duration: Seconds) {
        self.advance(None, duration);
    }

    /// Performs a full write of `target` into `selected`: applies SET or
    /// RESET pulses (with the configured amplitude, RESET uses −1.25·V) until
    /// the cell reads back the target state or the attempt budget is
    /// exhausted. Returns `true` on success.
    pub fn write(&mut self, selected: CellAddress, target: DigitalState) -> bool {
        let pulse = Seconds(100e-9);
        for _ in 0..50 {
            if self.array.read(selected) == target {
                return true;
            }
            let amplitude = match target {
                DigitalState::Lrs => self.config.v_write,
                DigitalState::Hrs => Volts(-1.25 * self.config.v_write.0),
            };
            self.apply_pulse(selected, amplitude, pulse);
        }
        self.array.read(selected) == target
    }

    /// Non-destructive read of one cell.
    pub fn read(&self, selected: CellAddress) -> DigitalState {
        self.array.read(selected)
    }

    /// Thermal/electrical snapshot of one cell (for the Fig. 1 trace).
    pub fn snapshot(&self, address: CellAddress, voltage: Volts) -> CellSnapshot {
        let cell = self.array.cell(address);
        CellSnapshot {
            address,
            voltage,
            temperature: cell.temperature(),
            crosstalk: cell.crosstalk_delta(),
            state: cell.normalized_state(),
        }
    }
}

impl HammerBackend for PulseEngine {
    fn label(&self) -> &'static str {
        "pulse"
    }

    fn rows(&self) -> usize {
        self.array.rows()
    }

    fn cols(&self) -> usize {
        self.array.cols()
    }

    fn apply_pulse(&mut self, selected: CellAddress, amplitude: Volts, length: Seconds) {
        PulseEngine::apply_pulse(self, selected, amplitude, length);
    }

    fn idle(&mut self, duration: Seconds) {
        PulseEngine::idle(self, duration);
    }

    fn read(&self, address: CellAddress) -> DigitalState {
        self.array.read(address)
    }

    fn normalized_state(&self, address: CellAddress) -> f64 {
        self.array.cell(address).normalized_state()
    }

    fn force_state(&mut self, address: CellAddress, state: DigitalState) {
        self.array.cell_mut(address).force_state(state);
    }

    fn force_normalized_state(&mut self, address: CellAddress, normalized: f64) {
        self.array
            .cell_mut(address)
            .force_normalized_state(normalized);
    }

    fn thermal_readout(&self, address: CellAddress) -> ThermalReadout {
        let cell = self.array.cell(address);
        ThermalReadout {
            temperature: cell.temperature(),
            crosstalk: cell.crosstalk_delta(),
            normalized_state: cell.normalized_state(),
        }
    }

    fn hub(&self) -> &CrosstalkHub {
        &self.hub
    }

    fn hub_mut(&mut self) -> &mut CrosstalkHub {
        &mut self.hub
    }

    fn elapsed(&self) -> Seconds {
        Seconds(self.elapsed)
    }

    fn reset(&mut self) {
        self.array.for_each_cell_mut(|_, mut cell| {
            cell.force_state(DigitalState::Hrs);
            cell.set_crosstalk_delta(Kelvin(0.0));
        });
        self.hub.reset();
        self.elapsed = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rram_units::SiExt;

    fn engine() -> PulseEngine {
        PulseEngine::with_uniform_coupling(
            5,
            5,
            DeviceParams::default(),
            0.12,
            EngineConfig::default(),
        )
    }

    #[test]
    fn write_and_read_back_both_states() {
        let mut e = engine();
        let cell = CellAddress::new(2, 2);
        assert!(e.write(cell, DigitalState::Lrs));
        assert_eq!(e.read(cell), DigitalState::Lrs);
        assert!(e.write(cell, DigitalState::Hrs));
        assert_eq!(e.read(cell), DigitalState::Hrs);
    }

    #[test]
    fn writing_one_cell_leaves_the_rest_untouched() {
        let mut e = engine();
        let reference = e.array().read_all();
        assert!(e.write(CellAddress::new(1, 3), DigitalState::Lrs));
        // Only the written cell changed.
        assert_eq!(e.array().count_differences(&reference), 1);
    }

    #[test]
    fn hammering_heats_the_neighbours() {
        let mut e = engine();
        let aggressor = CellAddress::new(2, 2);
        // Aggressor in LRS maximises the current (paper, Phase 1).
        e.array_mut()
            .cell_mut(aggressor)
            .force_state(DigitalState::Lrs);
        for _ in 0..20 {
            e.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
        }
        // The half-selected neighbour should have accumulated crosstalk heat.
        let victim = CellAddress::new(2, 1);
        assert!(
            e.hub().delta(victim.row, victim.col).0 > 20.0,
            "victim ΔT = {}",
            e.hub().delta(victim.row, victim.col).0
        );
        // A fully unselected cell far away should be much cooler.
        let far = CellAddress::new(0, 0);
        assert!(e.hub().delta(far.row, far.col).0 < e.hub().delta(victim.row, victim.col).0);
    }

    #[test]
    fn idle_cools_the_array() {
        let mut e = engine();
        let aggressor = CellAddress::new(2, 2);
        e.array_mut()
            .cell_mut(aggressor)
            .force_state(DigitalState::Lrs);
        for _ in 0..10 {
            e.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
        }
        let hot = e.hub().delta(2, 1).0;
        e.idle(1.0.us());
        let cooled = e.hub().delta(2, 1).0;
        assert!(cooled < 0.2 * hot, "hot {hot} vs cooled {cooled}");
    }

    #[test]
    fn elapsed_time_accumulates() {
        let mut e = engine();
        e.apply_pulse(CellAddress::new(0, 0), Volts(0.5), 100.0.ns());
        e.idle(100.0.ns());
        assert!((e.elapsed().0 - 200e-9).abs() < 1e-15);
    }

    #[test]
    fn snapshot_reports_state_and_temperature() {
        let mut e = engine();
        let aggressor = CellAddress::new(2, 2);
        e.array_mut()
            .cell_mut(aggressor)
            .force_state(DigitalState::Lrs);
        e.apply_pulse(aggressor, Volts(1.05), 20.0.ns());
        let snap = e.snapshot(aggressor, Volts(1.05));
        assert!(snap.temperature.0 > 600.0);
        assert!((snap.state - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_hub_blocks_crosstalk() {
        let mut e = engine();
        e.hub_mut().set_enabled(false);
        let aggressor = CellAddress::new(2, 2);
        e.array_mut()
            .cell_mut(aggressor)
            .force_state(DigitalState::Lrs);
        for _ in 0..20 {
            e.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
        }
        assert_eq!(e.hub().delta(2, 1).0, 0.0);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_hub_panics() {
        let array = CrossbarArray::new(3, 3, DeviceParams::default());
        let hub = CrosstalkHub::uniform(4, 3, 0.1, 0.05, 0.02, Seconds(0.0));
        let _ = PulseEngine::new(array, hub, EngineConfig::default());
    }
}
