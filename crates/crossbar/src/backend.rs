//! The [`HammerBackend`] abstraction: one interface over every crossbar
//! simulation engine.
//!
//! The workspace ships three engines with different cost/fidelity
//! trade-offs — the scalar ideal-driver [`crate::engine::PulseEngine`], the
//! struct-of-arrays [`crate::batched::BatchedEngine`] and the MNA-backed
//! [`crate::detailed::DetailedCrossbar`] — and the attack layer
//! (`neurohammer`) should not care which one it is driving. `HammerBackend`
//! captures exactly what a hammering campaign needs from an engine: pulse
//! application, idling, digital and analogue cell read-out, a thermal
//! snapshot per cell, crosstalk-hub access and a whole-array reset. Every
//! attack driver, countermeasure evaluation, scenario and campaign in
//! `neurohammer` is generic over this trait, so adding a fourth engine
//! (e.g. a GPU backend) only requires implementing it here.
//!
//! [`BackendKind`] is the declarative, serialisable selector used by campaign
//! specifications to choose an engine at runtime.
//!
//! # Examples
//!
//! Running the same burst on either engine through the trait:
//!
//! ```
//! use rram_crossbar::{BackendKind, CellAddress, EngineConfig, HammerBackend};
//! use rram_crossbar::CrosstalkHub;
//! use rram_jart::{DeviceParams, DigitalState};
//! use rram_units::{Seconds, Volts};
//!
//! for kind in [BackendKind::Pulse, BackendKind::Batched, BackendKind::detailed()] {
//!     let hub = CrosstalkHub::uniform(3, 3, 0.15, 0.075, 0.0375, Seconds(30e-9));
//!     let mut backend = kind.build(3, 3, DeviceParams::default(), hub,
//!                                  EngineConfig::default());
//!     let aggressor = CellAddress::new(1, 1);
//!     backend.force_state(aggressor, DigitalState::Lrs);
//!     backend.apply_pulse(aggressor, Volts(1.05), Seconds(50e-9));
//!     assert!(backend.thermal_readout(aggressor).temperature.0 > 300.0);
//! }
//! ```

use serde::{Deserialize, Serialize};

use crate::crosstalk::CrosstalkHub;
use crate::detailed::{DetailedCrossbar, WiringParasitics};
use crate::engine::{EngineConfig, PulseEngine};
use crate::scheme::CellAddress;
use rram_jart::{DeviceParams, DigitalState};
use rram_units::{Kelvin, Seconds, Volts};

/// Thermal/electrical snapshot of one cell, as exposed by any backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalReadout {
    /// Filament temperature, K.
    pub temperature: Kelvin,
    /// Imported crosstalk temperature increase, K.
    pub crosstalk: Kelvin,
    /// Normalised internal state (0 = HRS, 1 = LRS).
    pub normalized_state: f64,
}

/// A crossbar simulation engine a hammering campaign can drive.
///
/// The trait is object safe: campaign runners hold `Box<dyn HammerBackend>`
/// chosen at runtime from a [`BackendKind`].
///
/// # Examples
///
/// Code written against the trait runs on either engine:
///
/// ```
/// use rram_crossbar::{CellAddress, EngineConfig, HammerBackend, PulseEngine};
/// use rram_jart::{DeviceParams, DigitalState};
/// use rram_units::{Seconds, Volts};
///
/// fn hammer_once<B: HammerBackend + ?Sized>(engine: &mut B) -> f64 {
///     let aggressor = CellAddress::new(1, 1);
///     engine.force_state(aggressor, DigitalState::Lrs);
///     engine.apply_pulse(aggressor, Volts(1.05), Seconds(50e-9));
///     engine.thermal_readout(CellAddress::new(1, 0)).crosstalk.0
/// }
///
/// let mut engine = PulseEngine::with_uniform_coupling(
///     3, 3, DeviceParams::default(), 0.15, EngineConfig::default());
/// assert!(hammer_once(&mut engine) > 0.0);
/// ```
pub trait HammerBackend {
    /// Short human-readable engine name used in reports and tables.
    fn label(&self) -> &'static str;

    /// Number of array rows.
    fn rows(&self) -> usize;

    /// Number of array columns.
    fn cols(&self) -> usize;

    /// Applies one write pulse of `length` to `selected` under the engine's
    /// write scheme. Positive amplitude drives SET.
    fn apply_pulse(&mut self, selected: CellAddress, amplitude: Volts, length: Seconds);

    /// Grounds all lines for `duration`: filaments cool, crosstalk decays.
    fn idle(&mut self, duration: Seconds);

    /// Digital read-out of one cell.
    fn read(&self, address: CellAddress) -> DigitalState;

    /// Normalised internal state of one cell (0 = HRS, 1 = LRS).
    fn normalized_state(&self, address: CellAddress) -> f64;

    /// Forces the digital state of one cell (initialisation, fault
    /// injection).
    fn force_state(&mut self, address: CellAddress, state: DigitalState);

    /// Forces the normalised internal state of one cell (used by pulse
    /// batching to extrapolate slow drift).
    fn force_normalized_state(&mut self, address: CellAddress, normalized: f64);

    /// Thermal snapshot of one cell.
    fn thermal_readout(&self, address: CellAddress) -> ThermalReadout;

    /// The crosstalk hub.
    fn hub(&self) -> &CrosstalkHub;

    /// Mutable access to the crosstalk hub (ablations).
    fn hub_mut(&mut self) -> &mut CrosstalkHub;

    /// Total simulated time, s.
    fn elapsed(&self) -> Seconds;

    /// Resets the array to all-HRS at ambient temperature, clears the
    /// crosstalk state and rewinds the simulated clock.
    fn reset(&mut self);

    /// The hottest imported crosstalk ΔT anywhere in the array, K — what an
    /// on-die thermal-sensor network reports to a countermeasure. The
    /// default implementation scans the hub's lane-wise delta vector, so it
    /// works unchanged on the scalar, batched (`CellBank`-backed) and
    /// detailed engines without touching the shared `step_lanes` kernel.
    fn peak_crosstalk(&self) -> Kelvin {
        Kelvin(
            self.hub()
                .deltas()
                .iter()
                .fold(0.0_f64, |peak, &delta| peak.max(delta)),
        )
    }

    /// Worker threads this engine actually integrates lanes with — the
    /// clamped, effective count, not whatever a configuration asked for.
    /// Engines without a threaded path report 1.
    fn worker_threads(&self) -> usize {
        1
    }

    /// The SIMD tier this engine's lane kernel dispatches to right now
    /// (`"scalar"` / `"avx2"` / `"neon"`, see `rram_jart::simd`). Engines
    /// that never enter the lane kernel report `"scalar"`.
    fn simd_isa(&self) -> &'static str {
        "scalar"
    }

    /// Digital read-out of the whole array in row-major order.
    fn read_all(&self) -> Vec<DigitalState> {
        let mut states = Vec::with_capacity(self.rows() * self.cols());
        for row in 0..self.rows() {
            for col in 0..self.cols() {
                states.push(self.read(CellAddress::new(row, col)));
            }
        }
        states
    }

    /// Addresses of the cells whose digital state differs from `reference`
    /// (as returned by [`HammerBackend::read_all`]).
    ///
    /// # Panics
    ///
    /// Panics if `reference` does not have `rows × cols` entries.
    fn changed_cells(&self, reference: &[DigitalState]) -> Vec<CellAddress> {
        assert_eq!(
            reference.len(),
            self.rows() * self.cols(),
            "reference snapshot has the wrong length"
        );
        let cols = self.cols();
        self.read_all()
            .into_iter()
            .zip(reference.iter())
            .enumerate()
            .filter(|(_, (now, before))| now != *before)
            .map(|(i, _)| CellAddress::new(i / cols, i % cols))
            .collect()
    }
}

/// Declarative backend selector used by campaign specifications.
///
/// # Examples
///
/// `Batched` is selected from campaign JSON by its `"batched"` label and
/// runs the struct-of-arrays engine:
///
/// ```
/// use rram_crossbar::{BackendKind, CellAddress, CrosstalkHub, EngineConfig, WriteScheme};
/// use rram_jart::{DeviceParams, DigitalState};
/// use rram_units::{Seconds, Volts};
///
/// let kind: BackendKind = "batched".parse().unwrap();
/// assert_eq!(kind, BackendKind::Batched);
/// let hub = CrosstalkHub::two_ring(5, 5, 0.15, Seconds(30e-9));
/// let mut engine = kind.build(5, 5, DeviceParams::default(), hub,
///                             EngineConfig::default());
/// let aggressor = CellAddress::new(2, 2);
/// engine.force_state(aggressor, DigitalState::Lrs);
/// engine.apply_pulse(aggressor, Volts(1.05), Seconds(50e-9));
/// assert!(engine.thermal_readout(CellAddress::new(2, 1)).crosstalk.0 > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackendKind {
    /// The scalar ideal-driver [`PulseEngine`].
    Pulse,
    /// The struct-of-arrays [`crate::BatchedEngine`]: identical physics to
    /// [`PulseEngine`], integrated one whole-array kernel call per sub-step
    /// — the fast choice for large arrays and long campaigns.
    Batched,
    /// The MNA-backed [`DetailedCrossbar`] with the given wiring parasitics.
    Detailed(WiringParasitics),
    /// The table-driven reduced-order [`crate::SurrogateEngine`]: drift
    /// rates interpolated from grids fitted once to the kernel physics —
    /// the cheap choice for million-point campaign grids where a few tens
    /// of percent of rate error are acceptable. Requires homogeneous device
    /// parameters.
    Surrogate,
}

impl BackendKind {
    /// The detailed backend with default wiring parasitics.
    pub fn detailed() -> Self {
        BackendKind::Detailed(WiringParasitics::default())
    }

    /// Short label used in reports ("pulse" / "batched" / "detailed").
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Pulse => "pulse",
            BackendKind::Batched => "batched",
            BackendKind::Detailed(_) => "detailed",
            BackendKind::Surrogate => "surrogate",
        }
    }

    /// Builds a fresh all-HRS backend of this kind.
    ///
    /// The device ambient temperature is aligned with `config.ambient` so
    /// both engines see the same thermal baseline.
    ///
    /// # Panics
    ///
    /// Panics if the hub dimensions do not match `rows`/`cols`.
    pub fn build(
        &self,
        rows: usize,
        cols: usize,
        params: DeviceParams,
        hub: CrosstalkHub,
        config: EngineConfig,
    ) -> Box<dyn HammerBackend> {
        self.build_heterogeneous(rows, cols, params, None, hub, config)
    }

    /// Builds a fresh all-HRS backend with an optional per-cell parameter
    /// table (row-major) — the Monte Carlo variability entry point. With
    /// `table == None` this is exactly [`BackendKind::build`].
    ///
    /// The ambient temperature of the nominal parameters *and of every
    /// table entry* is aligned with `config.ambient`: the campaign's
    /// ambient axis always wins over a sampled ambient, so thermal
    /// baselines stay comparable across the grid.
    ///
    /// # Panics
    ///
    /// Panics if the hub dimensions do not match `rows`/`cols`, or the
    /// table length does not match the cell count.
    pub fn build_heterogeneous(
        &self,
        rows: usize,
        cols: usize,
        params: DeviceParams,
        table: Option<Vec<DeviceParams>>,
        hub: CrosstalkHub,
        config: EngineConfig,
    ) -> Box<dyn HammerBackend> {
        let params = DeviceParams {
            ambient_temperature: config.ambient.0,
            ..params
        };
        let table = table.map(|mut table| {
            for entry in &mut table {
                entry.ambient_temperature = config.ambient.0;
            }
            table
        });
        match self {
            BackendKind::Pulse => {
                let mut array = crate::array::CrossbarArray::new(rows, cols, params);
                if let Some(table) = table {
                    array.set_params_table(table);
                }
                Box::new(PulseEngine::new(array, hub, config))
            }
            BackendKind::Batched => {
                let mut array = crate::array::CrossbarArray::new(rows, cols, params);
                if let Some(table) = table {
                    array.set_params_table(table);
                }
                Box::new(crate::batched::BatchedEngine::new(array, hub, config))
            }
            BackendKind::Detailed(parasitics) => {
                let mut xbar =
                    DetailedCrossbar::new(rows, cols, params, *parasitics, hub, config.scheme)
                        .with_time_step(config.max_substep);
                if let Some(table) = table {
                    xbar.set_params_table(&table);
                }
                Box::new(xbar)
            }
            BackendKind::Surrogate => {
                assert!(
                    table.is_none(),
                    "the surrogate backend requires homogeneous device parameters \
                     (per-cell tables need the batched backend)"
                );
                let array = crate::array::CrossbarArray::new(rows, cols, params);
                Box::new(crate::surrogate::SurrogateEngine::new(array, hub, config))
            }
        }
    }
}

/// Parses a backend label as written in campaign JSON ("pulse", "batched",
/// "detailed" or "surrogate"); the detailed backend gets default parasitics.
impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pulse" => Ok(BackendKind::Pulse),
            "batched" => Ok(BackendKind::Batched),
            "detailed" => Ok(BackendKind::detailed()),
            "surrogate" => Ok(BackendKind::Surrogate),
            other => Err(format!("unknown backend kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rram_units::SiExt;

    fn hub() -> CrosstalkHub {
        CrosstalkHub::uniform(3, 3, 0.15, 0.075, 0.0375, Seconds(30e-9))
    }

    fn backends() -> Vec<Box<dyn HammerBackend>> {
        [
            BackendKind::Pulse,
            BackendKind::Batched,
            BackendKind::detailed(),
            BackendKind::Surrogate,
        ]
        .iter()
        .map(|kind| {
            kind.build(
                3,
                3,
                DeviceParams::default(),
                hub(),
                EngineConfig::default(),
            )
        })
        .collect()
    }

    #[test]
    fn both_backends_run_the_same_burst() {
        for mut backend in backends() {
            let aggressor = CellAddress::new(1, 1);
            backend.force_state(aggressor, DigitalState::Lrs);
            for _ in 0..3 {
                backend.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
                backend.idle(50.0.ns());
            }
            assert!(
                backend.thermal_readout(CellAddress::new(1, 0)).crosstalk.0 > 0.0,
                "{}: no crosstalk imported",
                backend.label()
            );
            assert!(backend.elapsed().0 > 0.0);
        }
    }

    #[test]
    fn reset_restores_a_pristine_array() {
        for mut backend in backends() {
            let cell = CellAddress::new(0, 1);
            backend.force_state(cell, DigitalState::Lrs);
            backend.apply_pulse(cell, Volts(1.05), 50.0.ns());
            backend.reset();
            assert_eq!(backend.read(cell), DigitalState::Hrs, "{}", backend.label());
            assert_eq!(backend.elapsed().0, 0.0);
            assert!(backend.hub().deltas().iter().all(|&d| d == 0.0));
        }
    }

    #[test]
    fn changed_cells_reports_exactly_the_flipped_cell() {
        for mut backend in backends() {
            let reference = backend.read_all();
            backend.force_state(CellAddress::new(2, 0), DigitalState::Lrs);
            assert_eq!(
                backend.changed_cells(&reference),
                vec![CellAddress::new(2, 0)],
                "{}",
                backend.label()
            );
        }
    }

    #[test]
    fn peak_crosstalk_tracks_the_hottest_lane_on_every_backend() {
        for mut backend in backends() {
            assert_eq!(backend.peak_crosstalk().0, 0.0, "{}", backend.label());
            let aggressor = CellAddress::new(1, 1);
            backend.force_state(aggressor, DigitalState::Lrs);
            backend.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
            let peak = backend.peak_crosstalk().0;
            assert!(peak > 0.0, "{}", backend.label());
            let max_delta = backend
                .hub()
                .deltas()
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(peak, max_delta, "{}", backend.label());
        }
    }

    #[test]
    fn force_normalized_state_round_trips() {
        for mut backend in backends() {
            let cell = CellAddress::new(1, 2);
            backend.force_normalized_state(cell, 0.9);
            assert!((backend.normalized_state(cell) - 0.9).abs() < 1e-9);
            assert_eq!(backend.read(cell), DigitalState::Lrs);
        }
    }

    #[test]
    fn labels_and_parsing_agree() {
        for kind in [
            BackendKind::Pulse,
            BackendKind::Batched,
            BackendKind::detailed(),
            BackendKind::Surrogate,
        ] {
            let parsed: BackendKind = kind.label().parse().unwrap();
            assert_eq!(parsed.label(), kind.label());
        }
        assert!("gpu".parse::<BackendKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "homogeneous device parameters")]
    fn surrogate_rejects_per_cell_tables() {
        let table = vec![DeviceParams::default(); 9];
        let _ = BackendKind::Surrogate.build_heterogeneous(
            3,
            3,
            DeviceParams::default(),
            Some(table),
            hub(),
            EngineConfig::default(),
        );
    }
}
