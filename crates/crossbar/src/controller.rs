//! The memory controller: init files, stimulus files and their execution.
//!
//! The paper's circuit framework is driven by two configuration files: the
//! *init* file holds the initial resistance state of every cell and the
//! *stimuli* file lists the pulses (amplitude, length, duty cycle) the
//! controller must generate. This module provides both formats as simple
//! line-oriented text files plus a controller that executes a parsed stimulus
//! on a [`PulseEngine`].

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::engine::PulseEngine;
use crate::scheme::CellAddress;
use rram_jart::DigitalState;
use rram_units::{Seconds, Volts};

/// Initial contents of the array: one digital state per cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitState {
    rows: usize,
    cols: usize,
    states: Vec<DigitalState>,
}

impl InitState {
    /// Creates an init state with every cell in `state`.
    pub fn uniform(rows: usize, cols: usize, state: DigitalState) -> Self {
        InitState {
            rows,
            cols,
            states: vec![state; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// State of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn get(&self, row: usize, col: usize) -> DigitalState {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        self.states[row * self.cols + col]
    }

    /// Sets the state of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn set(&mut self, row: usize, col: usize, state: DigitalState) {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        self.states[row * self.cols + col] = state;
    }

    /// Serialises to the text format: one line per row, `1` for LRS and `0`
    /// for HRS, separated by spaces.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for row in 0..self.rows {
            let line: Vec<&str> = (0..self.cols)
                .map(|col| match self.get(row, col) {
                    DigitalState::Lrs => "1",
                    DigitalState::Hrs => "0",
                })
                .collect();
            out.push_str(&line.join(" "));
            out.push('\n');
        }
        out
    }

    /// Applies the init state to an engine's array.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match the engine's array.
    pub fn apply(&self, engine: &mut PulseEngine) {
        assert_eq!(engine.array().rows(), self.rows, "row count mismatch");
        assert_eq!(engine.array().cols(), self.cols, "column count mismatch");
        engine.array_mut().for_each_cell_mut(|address, mut cell| {
            cell.force_state(self.get(address.row, address.col));
        });
    }
}

impl FromStr for InitState {
    type Err = StimulusParseError;

    /// Parses the grid text format produced by [`InitState::to_text`].
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut rows_vec: Vec<Vec<DigitalState>> = Vec::new();
        for (line_no, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut row = Vec::new();
            for token in line.split_whitespace() {
                let state = match token {
                    "1" | "LRS" | "lrs" => DigitalState::Lrs,
                    "0" | "HRS" | "hrs" => DigitalState::Hrs,
                    other => {
                        return Err(StimulusParseError {
                            line: line_no + 1,
                            message: format!("unknown cell state '{other}'"),
                        })
                    }
                };
                row.push(state);
            }
            rows_vec.push(row);
        }
        if rows_vec.is_empty() {
            return Err(StimulusParseError {
                line: 0,
                message: "init file contains no rows".to_string(),
            });
        }
        let cols = rows_vec[0].len();
        if rows_vec.iter().any(|r| r.len() != cols) {
            return Err(StimulusParseError {
                line: 0,
                message: "init file rows have inconsistent lengths".to_string(),
            });
        }
        Ok(InitState {
            rows: rows_vec.len(),
            cols,
            states: rows_vec.into_iter().flatten().collect(),
        })
    }
}

/// One operation of a stimulus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operation {
    /// Write a digital state into a cell.
    Write {
        /// Target cell.
        cell: CellAddress,
        /// Target state.
        state: DigitalState,
    },
    /// Hammer a cell: apply `count` pulses of `amplitude` and `length`,
    /// separated by `gap` of idle time.
    Hammer {
        /// The aggressor cell.
        cell: CellAddress,
        /// Pulse amplitude, V.
        amplitude: Volts,
        /// Pulse length, s.
        length: Seconds,
        /// Idle gap between pulses, s.
        gap: Seconds,
        /// Number of pulses.
        count: usize,
    },
    /// Read a cell (the result is recorded in the controller report).
    Read {
        /// The cell to read.
        cell: CellAddress,
    },
    /// Let the array idle for the given duration.
    Idle {
        /// Idle duration, s.
        duration: Seconds,
    },
}

/// A parsed stimulus: an ordered list of operations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Stimulus {
    /// The operations, in execution order.
    pub operations: Vec<Operation>,
}

/// Parse error with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StimulusParseError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for StimulusParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for StimulusParseError {}

fn parse_duration_ns(token: &str, line: usize) -> Result<Seconds, StimulusParseError> {
    let cleaned = token.trim_end_matches("ns");
    cleaned
        .parse::<f64>()
        .map(|ns| Seconds(ns * 1e-9))
        .map_err(|_| StimulusParseError {
            line,
            message: format!("cannot parse duration '{token}' (expected nanoseconds)"),
        })
}

impl FromStr for Stimulus {
    type Err = StimulusParseError;

    /// Parses the stimulus text format. Each non-empty, non-comment line is
    /// one operation:
    ///
    /// ```text
    /// write  <row> <col> <0|1>
    /// hammer <row> <col> <amplitude_V> <pulse_ns> <gap_ns> <count>
    /// read   <row> <col>
    /// idle   <ns>
    /// ```
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut operations = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let err = |message: String| StimulusParseError {
                line: line_no,
                message,
            };
            let parse_usize = |t: &str| {
                t.parse::<usize>()
                    .map_err(|_| err(format!("cannot parse integer '{t}'")))
            };
            let parse_f64 = |t: &str| {
                t.trim_end_matches('V')
                    .parse::<f64>()
                    .map_err(|_| err(format!("cannot parse number '{t}'")))
            };
            match tokens[0].to_ascii_lowercase().as_str() {
                "write" => {
                    if tokens.len() != 4 {
                        return Err(err("write expects: write <row> <col> <0|1>".into()));
                    }
                    let state = match tokens[3] {
                        "1" | "LRS" | "lrs" => DigitalState::Lrs,
                        "0" | "HRS" | "hrs" => DigitalState::Hrs,
                        other => return Err(err(format!("unknown state '{other}'"))),
                    };
                    operations.push(Operation::Write {
                        cell: CellAddress::new(parse_usize(tokens[1])?, parse_usize(tokens[2])?),
                        state,
                    });
                }
                "hammer" => {
                    if tokens.len() != 7 {
                        return Err(err(
                            "hammer expects: hammer <row> <col> <amplitude> <pulse_ns> <gap_ns> <count>"
                                .into(),
                        ));
                    }
                    operations.push(Operation::Hammer {
                        cell: CellAddress::new(parse_usize(tokens[1])?, parse_usize(tokens[2])?),
                        amplitude: Volts(parse_f64(tokens[3])?),
                        length: parse_duration_ns(tokens[4], line_no)?,
                        gap: parse_duration_ns(tokens[5], line_no)?,
                        count: parse_usize(tokens[6])?,
                    });
                }
                "read" => {
                    if tokens.len() != 3 {
                        return Err(err("read expects: read <row> <col>".into()));
                    }
                    operations.push(Operation::Read {
                        cell: CellAddress::new(parse_usize(tokens[1])?, parse_usize(tokens[2])?),
                    });
                }
                "idle" => {
                    if tokens.len() != 2 {
                        return Err(err("idle expects: idle <ns>".into()));
                    }
                    operations.push(Operation::Idle {
                        duration: parse_duration_ns(tokens[1], line_no)?,
                    });
                }
                other => return Err(err(format!("unknown operation '{other}'"))),
            }
        }
        Ok(Stimulus { operations })
    }
}

/// Execution report of a stimulus.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ControllerReport {
    /// Results of every `read` operation, in order.
    pub reads: Vec<(CellAddress, DigitalState)>,
    /// Total number of write/hammer pulses issued.
    pub pulses_issued: usize,
    /// Total simulated time spent executing the stimulus, s.
    pub simulated_time: Seconds,
}

/// The memory controller: executes parsed stimuli on a pulse engine.
#[derive(Debug)]
pub struct MemoryController<'a> {
    engine: &'a mut PulseEngine,
}

impl<'a> MemoryController<'a> {
    /// Creates a controller driving the given engine.
    pub fn new(engine: &'a mut PulseEngine) -> Self {
        MemoryController { engine }
    }

    /// Executes a stimulus and returns the report.
    pub fn execute(&mut self, stimulus: &Stimulus) -> ControllerReport {
        let start = self.engine.elapsed();
        let mut report = ControllerReport::default();
        for operation in &stimulus.operations {
            match *operation {
                Operation::Write { cell, state } => {
                    self.engine.write(cell, state);
                    report.pulses_issued += 1;
                }
                Operation::Hammer {
                    cell,
                    amplitude,
                    length,
                    gap,
                    count,
                } => {
                    for _ in 0..count {
                        self.engine.apply_pulse(cell, amplitude, length);
                        if gap.0 > 0.0 {
                            self.engine.idle(gap);
                        }
                    }
                    report.pulses_issued += count;
                }
                Operation::Read { cell } => {
                    report.reads.push((cell, self.engine.read(cell)));
                }
                Operation::Idle { duration } => {
                    self.engine.idle(duration);
                }
            }
        }
        report.simulated_time = Seconds(self.engine.elapsed().0 - start.0);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use rram_jart::DeviceParams;

    fn engine() -> PulseEngine {
        PulseEngine::with_uniform_coupling(
            3,
            3,
            DeviceParams::default(),
            0.12,
            EngineConfig::default(),
        )
    }

    #[test]
    fn init_state_text_round_trip() {
        let mut init = InitState::uniform(2, 3, DigitalState::Hrs);
        init.set(0, 1, DigitalState::Lrs);
        init.set(1, 2, DigitalState::Lrs);
        let text = init.to_text();
        let parsed: InitState = text.parse().unwrap();
        assert_eq!(parsed, init);
    }

    #[test]
    fn init_state_accepts_word_tokens_and_comments() {
        let parsed: InitState = "# header\nLRS HRS\n0 1 # trailing\n".parse().unwrap();
        assert_eq!(parsed.get(0, 0), DigitalState::Lrs);
        assert_eq!(parsed.get(0, 1), DigitalState::Hrs);
        assert_eq!(parsed.get(1, 1), DigitalState::Lrs);
    }

    #[test]
    fn init_state_rejects_ragged_rows_and_garbage() {
        assert!("1 0\n1".parse::<InitState>().is_err());
        assert!("1 x".parse::<InitState>().is_err());
        assert!("".parse::<InitState>().is_err());
    }

    #[test]
    fn init_state_applies_to_engine() {
        let mut e = engine();
        let mut init = InitState::uniform(3, 3, DigitalState::Hrs);
        init.set(1, 1, DigitalState::Lrs);
        init.apply(&mut e);
        assert_eq!(e.read(CellAddress::new(1, 1)), DigitalState::Lrs);
        assert_eq!(e.read(CellAddress::new(0, 0)), DigitalState::Hrs);
    }

    #[test]
    fn stimulus_parses_all_operations() {
        let text = "\
# attack description
write 1 1 1
hammer 1 1 1.05 50 50 3
read 1 2
idle 200
";
        let stimulus: Stimulus = text.parse().unwrap();
        assert_eq!(stimulus.operations.len(), 4);
        assert!(matches!(
            stimulus.operations[1],
            Operation::Hammer { count: 3, .. }
        ));
        match stimulus.operations[1] {
            Operation::Hammer { length, gap, .. } => {
                assert!((length.0 - 50e-9).abs() < 1e-18);
                assert!((gap.0 - 50e-9).abs() < 1e-18);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn stimulus_parse_errors_carry_line_numbers() {
        let err = "write 1 1 1\nbogus 1 2".parse::<Stimulus>().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));

        let err = "hammer 1 1 1.05 50".parse::<Stimulus>().unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn controller_executes_stimulus_and_reports_reads() {
        let mut e = engine();
        let stimulus: Stimulus = "\
write 0 0 1
read 0 0
read 2 2
hammer 0 0 1.05 50 50 5
"
        .parse()
        .unwrap();
        let mut controller = MemoryController::new(&mut e);
        let report = controller.execute(&stimulus);
        assert_eq!(report.reads.len(), 2);
        assert_eq!(report.reads[0], (CellAddress::new(0, 0), DigitalState::Lrs));
        assert_eq!(report.reads[1], (CellAddress::new(2, 2), DigitalState::Hrs));
        assert_eq!(report.pulses_issued, 6);
        assert!(report.simulated_time.0 > 0.0);
    }
}
