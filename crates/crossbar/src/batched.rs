//! The batched (struct-of-arrays) pulse engine.
//!
//! [`BatchedEngine`] drives the same ideal-driver physics as
//! [`crate::engine::PulseEngine`], but organises each sub-step around the
//! array instead of the cell:
//!
//! 1. the write scheme's line biases are evaluated **once per pulse** into a
//!    reused per-cell voltage buffer (they are constant while the bias is),
//! 2. all cells integrate in a single [`rram_jart::kernel::step_lanes`] call
//!    over the array's [`rram_jart::CellBank`] lanes,
//! 3. crosstalk import/export moves lane-wise — the hub state is copied into
//!    the bank's crosstalk lane and the bank's temperature lane is borrowed
//!    straight back — and the hub advances through its scatter-based
//!    [`crate::crosstalk::CrosstalkHub::update_batched`].
//!
//! No sub-step allocates, and the hub cost drops from `O(cells²)` to
//! `O(cells · coupling-support)`, which is what makes 10²–10⁵-pulse
//! campaigns on large arrays tractable. Because the integration kernel is
//! shared with the scalar engine, per-cell trajectories are bit-identical to
//! [`crate::engine::PulseEngine`]; only the hub's floating-point
//! accumulation order differs. `tests/engine_agreement.rs` (workspace root)
//! pins the Pulse↔Batched agreement across write schemes.

use serde::{Deserialize, Serialize};

use crate::array::CrossbarArray;
use crate::backend::{HammerBackend, ThermalReadout};
use crate::crosstalk::CrosstalkHub;
use crate::engine::EngineConfig;
use crate::scheme::CellAddress;
use rram_jart::{DeviceParams, DigitalState, MathMode};
use rram_units::{Kelvin, Seconds, Volts};

/// Shared handle to the pulse counter (one registry registration per
/// process; every pulse after that is a single atomic add). Registration
/// also publishes the active SIMD tier as a labelled gauge, so `/metrics`
/// reports which kernel the fleet actually dispatched.
fn pulses_integrated() -> &'static std::sync::Arc<rram_telemetry::Counter> {
    static HANDLE: std::sync::OnceLock<std::sync::Arc<rram_telemetry::Counter>> =
        std::sync::OnceLock::new();
    HANDLE.get_or_init(|| {
        let registry = rram_telemetry::Registry::global();
        registry
            .gauge_with(
                "kernel_simd_tier",
                "Active SIMD lane-kernel tier (1 = in use)",
                &[("tier", rram_jart::simd::active().label())],
            )
            .set(1.0);
        registry.counter(
            "kernel_pulses_total",
            "Hammer pulses integrated by the batched engine",
        )
    })
}

/// The batched ideal-driver engine: array + hub + scheme, integrated one
/// whole-array kernel call per sub-step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchedEngine {
    array: CrossbarArray,
    hub: CrosstalkHub,
    config: EngineConfig,
    /// Simulated time elapsed, s.
    elapsed: f64,
    /// Reused per-cell voltage buffer (row-major), filled once per pulse.
    voltages: Vec<f64>,
    /// Reused per-column voltage patterns the buffer is stamped from: a
    /// write access produces only two distinct row patterns (selected /
    /// unselected word line).
    pattern_selected: Vec<f64>,
    pattern_unselected: Vec<f64>,
    /// Worker threads for the lane integration (1 = single-threaded).
    threads: usize,
}

impl BatchedEngine {
    /// Creates an engine around an existing array and hub.
    ///
    /// # Panics
    ///
    /// Panics if the hub dimensions do not match the array.
    pub fn new(array: CrossbarArray, hub: CrosstalkHub, config: EngineConfig) -> Self {
        assert_eq!(array.rows(), hub.rows(), "row count mismatch");
        assert_eq!(array.cols(), hub.cols(), "column count mismatch");
        let cells = array.len();
        let threads = config.threads.max(1);
        BatchedEngine {
            array,
            hub,
            config,
            elapsed: 0.0,
            voltages: vec![0.0; cells],
            pattern_selected: Vec::new(),
            pattern_unselected: Vec::new(),
            threads,
        }
    }

    /// Sets the number of worker threads for the lane integration and
    /// returns the engine (builder style). Per-cell trajectories are
    /// bit-identical for any thread count; values above 1 only pay off once
    /// the array is large enough to amortise the scoped-thread dispatch
    /// (≳256×256).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Worker threads used for the lane integration.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Convenience constructor: fresh HRS array with the given device
    /// parameters and a synthetic uniform coupling profile.
    pub fn with_uniform_coupling(
        rows: usize,
        cols: usize,
        params: DeviceParams,
        nearest_alpha: f64,
        config: EngineConfig,
    ) -> Self {
        let array = CrossbarArray::new(rows, cols, params);
        let hub = CrosstalkHub::two_ring(rows, cols, nearest_alpha, Seconds(30e-9));
        BatchedEngine::new(array, hub, config)
    }

    /// The underlying array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// Mutable access to the array (initialisation, fault injection).
    pub fn array_mut(&mut self) -> &mut CrossbarArray {
        &mut self.array
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Advances the whole array by `duration` with the line bias produced by
    /// selecting `selected` at amplitude `amplitude` (None = all lines
    /// grounded / idle).
    fn advance(&mut self, selected: Option<(CellAddress, Volts)>, duration: Seconds) {
        let mut remaining = duration.0;
        let substep = self.config.substep(selected.is_some());

        // Gap phase: every cell voltage is zero by construction, so skip
        // both the voltage-buffer refill and the full kernel dispatch and
        // run the bit-identical relax update instead (a test below pins
        // gap-stepping against the explicit all-zero kernel call).
        let Some((address, amplitude)) = selected else {
            while remaining > 0.0 {
                let dt = remaining.min(substep);
                self.array.import_crosstalk(self.hub.deltas());
                self.array.relax_lanes(Seconds(dt));
                self.hub.update_batched(
                    self.array.temperatures(),
                    self.config.ambient,
                    Seconds(dt),
                );
                remaining -= dt;
                self.elapsed += dt;
            }
            return;
        };

        // The line biases are constant for the whole advance, and a write
        // access produces only two distinct row voltage patterns (selected
        // word line / every unselected one): build each pattern once and
        // stamp it per row. The per-column values are exactly the
        // `LineBias::cell_voltage` subtraction over the same line levels,
        // so the buffer is bit-identical to evaluating the scheme per cell
        // (a test below pins this).
        let (rows, cols) = (self.array.rows(), self.array.cols());
        let (unselected_wl, unselected_bl) = self.config.scheme.unselected_levels(amplitude);
        self.pattern_selected.clear();
        self.pattern_unselected.clear();
        for col in 0..cols {
            let bit_line = if col == address.col {
                Volts(0.0)
            } else {
                unselected_bl
            };
            self.pattern_selected.push((amplitude - bit_line).0);
            self.pattern_unselected.push((unselected_wl - bit_line).0);
        }
        self.voltages.resize(rows * cols, 0.0);
        for row in 0..rows {
            let pattern = if row == address.row {
                &self.pattern_selected
            } else {
                &self.pattern_unselected
            };
            self.voltages[row * cols..(row + 1) * cols].copy_from_slice(pattern);
        }

        let mode = if self.config.fast_math {
            MathMode::Fast
        } else {
            MathMode::Exact
        };
        while remaining > 0.0 {
            let dt = remaining.min(substep);
            // Lane-wise crosstalk import, one kernel call over all lanes,
            // lane-borrowed export — no per-sub-step allocation.
            self.array.import_crosstalk(self.hub.deltas());
            if self.threads > 1 {
                self.array.step_lanes_threaded_mode(
                    &self.voltages,
                    Seconds(dt),
                    self.threads,
                    mode,
                );
            } else {
                self.array
                    .step_lanes_mode(&self.voltages, Seconds(dt), mode);
            }
            self.hub
                .update_batched(self.array.temperatures(), self.config.ambient, Seconds(dt));
            remaining -= dt;
            self.elapsed += dt;
        }
    }

    /// Applies one write pulse of the given length to `selected` using the
    /// configured scheme and amplitude. Positive amplitude drives SET.
    pub fn apply_pulse(&mut self, selected: CellAddress, amplitude: Volts, length: Seconds) {
        pulses_integrated().inc();
        self.advance(Some((selected, amplitude)), length);
    }

    /// Lets the array idle (all lines grounded) for `duration`; filaments
    /// cool and the crosstalk state decays.
    pub fn idle(&mut self, duration: Seconds) {
        self.advance(None, duration);
    }
}

impl HammerBackend for BatchedEngine {
    fn label(&self) -> &'static str {
        "batched"
    }

    fn worker_threads(&self) -> usize {
        self.threads
    }

    fn simd_isa(&self) -> &'static str {
        rram_jart::simd::active().label()
    }

    fn rows(&self) -> usize {
        self.array.rows()
    }

    fn cols(&self) -> usize {
        self.array.cols()
    }

    fn apply_pulse(&mut self, selected: CellAddress, amplitude: Volts, length: Seconds) {
        BatchedEngine::apply_pulse(self, selected, amplitude, length);
    }

    fn idle(&mut self, duration: Seconds) {
        BatchedEngine::idle(self, duration);
    }

    fn read(&self, address: CellAddress) -> DigitalState {
        self.array.read(address)
    }

    fn normalized_state(&self, address: CellAddress) -> f64 {
        self.array.cell(address).normalized_state()
    }

    fn force_state(&mut self, address: CellAddress, state: DigitalState) {
        self.array.cell_mut(address).force_state(state);
    }

    fn force_normalized_state(&mut self, address: CellAddress, normalized: f64) {
        self.array
            .cell_mut(address)
            .force_normalized_state(normalized);
    }

    fn thermal_readout(&self, address: CellAddress) -> ThermalReadout {
        let cell = self.array.cell(address);
        ThermalReadout {
            temperature: cell.temperature(),
            crosstalk: cell.crosstalk_delta(),
            normalized_state: cell.normalized_state(),
        }
    }

    fn hub(&self) -> &CrosstalkHub {
        &self.hub
    }

    fn hub_mut(&mut self) -> &mut CrosstalkHub {
        &mut self.hub
    }

    fn elapsed(&self) -> Seconds {
        Seconds(self.elapsed)
    }

    fn reset(&mut self) {
        self.array.for_each_cell_mut(|_, mut cell| {
            cell.force_state(DigitalState::Hrs);
            cell.set_crosstalk_delta(Kelvin(0.0));
        });
        self.hub.reset();
        self.elapsed = 0.0;
    }

    fn read_all(&self) -> Vec<DigitalState> {
        self.array.read_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PulseEngine;
    use rram_units::SiExt;

    fn engines() -> (PulseEngine, BatchedEngine) {
        let pulse = PulseEngine::with_uniform_coupling(
            5,
            5,
            DeviceParams::default(),
            0.12,
            EngineConfig::default(),
        );
        let batched = BatchedEngine::with_uniform_coupling(
            5,
            5,
            DeviceParams::default(),
            0.12,
            EngineConfig::default(),
        );
        (pulse, batched)
    }

    #[test]
    fn batched_burst_matches_the_scalar_engine_per_cell() {
        let (mut pulse, mut batched) = engines();
        let aggressor = CellAddress::new(2, 2);
        for engine in [&mut pulse as &mut dyn HammerBackend, &mut batched] {
            engine.force_state(aggressor, DigitalState::Lrs);
            for _ in 0..10 {
                engine.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
                engine.idle(50.0.ns());
            }
        }
        assert_eq!(pulse.elapsed().0, HammerBackend::elapsed(&batched).0);
        // Cell trajectories go through the identical kernel; only the hub's
        // accumulation order differs, so states agree to float precision.
        for (address, cell) in pulse.array().iter() {
            let b = batched.array().cell(address);
            let (a_n, b_n) = (cell.normalized_state(), b.normalized_state());
            assert!(
                (a_n - b_n).abs() < 1e-9 * a_n.abs().max(1e-9),
                "{address:?}: {a_n} vs {b_n}"
            );
        }
    }

    #[test]
    fn hammering_heats_the_neighbours() {
        let (_, mut e) = engines();
        let aggressor = CellAddress::new(2, 2);
        e.array_mut()
            .cell_mut(aggressor)
            .force_state(DigitalState::Lrs);
        for _ in 0..20 {
            e.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
        }
        let victim = CellAddress::new(2, 1);
        assert!(
            e.hub().delta(victim.row, victim.col).0 > 20.0,
            "victim ΔT = {}",
            e.hub().delta(victim.row, victim.col).0
        );
        let far = CellAddress::new(0, 0);
        assert!(e.hub().delta(far.row, far.col).0 < e.hub().delta(victim.row, victim.col).0);
    }

    #[test]
    fn reset_restores_a_pristine_array() {
        let (_, mut e) = engines();
        let cell = CellAddress::new(1, 2);
        e.force_state(cell, DigitalState::Lrs);
        BatchedEngine::apply_pulse(&mut e, cell, Volts(1.05), 50.0.ns());
        HammerBackend::reset(&mut e);
        assert_eq!(e.read(cell), DigitalState::Hrs);
        assert_eq!(HammerBackend::elapsed(&e).0, 0.0);
        assert!(e.hub().deltas().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn gap_stepping_is_bit_identical_to_the_all_zero_kernel_call() {
        // The gap-phase fast path (no voltage-buffer refill, relax update
        // instead of the full kernel) must be bit-identical to explicitly
        // stepping the whole array with an all-zero voltage vector.
        let (_, mut fast) = engines();
        let aggressor = CellAddress::new(2, 2);
        fast.force_state(aggressor, DigitalState::Lrs);
        let mut reference = fast.clone();

        for _ in 0..5 {
            fast.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
            reference.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
            // Fast path under test:
            fast.idle(130.0.ns());
            // Reference: the same sub-step schedule with an explicit
            // all-zero kernel call.
            let mut remaining = 130.0e-9_f64;
            let substep = reference.config.substep(false);
            let zeros = vec![0.0; reference.array.len()];
            while remaining > 0.0 {
                let dt = remaining.min(substep);
                reference.array.import_crosstalk(reference.hub.deltas());
                reference.array.step_lanes(&zeros, Seconds(dt));
                reference.hub.update_batched(
                    reference.array.temperatures(),
                    reference.config.ambient,
                    Seconds(dt),
                );
                remaining -= dt;
                reference.elapsed += dt;
            }
        }

        assert_eq!(fast.elapsed, reference.elapsed);
        assert_eq!(fast.hub.deltas(), reference.hub.deltas());
        let (a, b) = (fast.array.bank(), reference.array.bank());
        for lane in 0..a.lanes() {
            assert_eq!(
                a.concentrations()[lane].to_bits(),
                b.concentrations()[lane].to_bits()
            );
            assert_eq!(
                a.temperatures()[lane].to_bits(),
                b.temperatures()[lane].to_bits()
            );
            assert_eq!(a.charges()[lane].to_bits(), b.charges()[lane].to_bits());
            assert_eq!(
                a.stress_times()[lane].to_bits(),
                b.stress_times()[lane].to_bits()
            );
            assert_eq!(a.digital()[lane], b.digital()[lane]);
        }
    }

    #[test]
    fn threaded_engine_is_bit_identical_to_single_threaded() {
        let (_, mut single) = engines();
        let mut threaded = single.clone().with_threads(4);
        assert_eq!(threaded.threads(), 4);
        let aggressor = CellAddress::new(2, 2);
        for engine in [&mut single, &mut threaded] {
            engine.force_state(aggressor, DigitalState::Lrs);
            for _ in 0..8 {
                BatchedEngine::apply_pulse(engine, aggressor, Volts(1.05), 50.0.ns());
                BatchedEngine::idle(engine, 50.0.ns());
            }
        }
        assert_eq!(single.hub.deltas(), threaded.hub.deltas());
        for lane in 0..single.array.bank().lanes() {
            assert_eq!(
                single.array.bank().concentrations()[lane].to_bits(),
                threaded.array.bank().concentrations()[lane].to_bits()
            );
        }
    }

    #[test]
    fn pattern_voltage_fill_matches_the_per_cell_line_bias_bitwise() {
        // The stamped row patterns must reproduce evaluating
        // `LineBias::cell_voltage` for every cell, bit for bit, for every
        // scheme and for selected cells on array edges.
        for scheme in crate::scheme::WriteScheme::ALL {
            for selected in [
                CellAddress::new(0, 0),
                CellAddress::new(2, 3),
                CellAddress::new(4, 6),
            ] {
                let config = EngineConfig {
                    scheme,
                    ..EngineConfig::default()
                };
                let mut e = BatchedEngine::with_uniform_coupling(
                    5,
                    7,
                    DeviceParams::default(),
                    0.1,
                    config,
                );
                let amplitude = Volts(1.05);
                e.apply_pulse(selected, amplitude, 1.0.ns());
                let bias = scheme.line_bias(5, 7, selected, amplitude);
                for row in 0..5 {
                    for col in 0..7 {
                        let expected = bias.cell_voltage(CellAddress::new(row, col)).0;
                        let got = e.voltages[row * 7 + col];
                        assert_eq!(
                            got.to_bits(),
                            expected.to_bits(),
                            "{scheme:?} selected {selected:?} cell ({row},{col}): \
                             {got} vs {expected}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fast_math_engine_tracks_the_exact_engine_closely() {
        // The fast tier is tolerance-bounded, not bit-identical: same flip
        // decisions and per-cell states within a tight relative band. The
        // workspace agreement suite pins the full Fig. 3a behaviour; this
        // is the in-crate smoke version.
        let exact = BatchedEngine::with_uniform_coupling(
            5,
            5,
            DeviceParams::default(),
            0.12,
            EngineConfig::default(),
        );
        let mut fast = exact.clone();
        fast.config.fast_math = true;
        let mut exact = exact;
        let aggressor = CellAddress::new(2, 2);
        for engine in [&mut exact, &mut fast] {
            engine
                .array_mut()
                .cell_mut(aggressor)
                .force_state(DigitalState::Lrs);
            for _ in 0..10 {
                BatchedEngine::apply_pulse(engine, aggressor, Volts(1.05), 50.0.ns());
                BatchedEngine::idle(engine, 50.0.ns());
            }
        }
        assert_eq!(exact.array.read_all(), fast.array.read_all());
        for (address, cell) in exact.array.iter() {
            let (a, b) = (
                cell.normalized_state(),
                fast.array.cell(address).normalized_state(),
            );
            assert!(
                (a - b).abs() < 1e-6 * a.abs().max(1e-6),
                "{address:?}: exact {a} vs fast {b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_hub_panics() {
        let array = CrossbarArray::new(3, 3, DeviceParams::default());
        let hub = CrosstalkHub::uniform(4, 3, 0.1, 0.05, 0.02, Seconds(0.0));
        let _ = BatchedEngine::new(array, hub, EngineConfig::default());
    }
}
