//! The passive memristive crossbar platform of the NeuroHammer reproduction
//! (Fig. 2c of the paper): array, write schemes, memory controller,
//! crosstalk hub and simulation engines.
//!
//! The paper's circuit-level framework has three major parts, all of which
//! live in this crate:
//!
//! * **Memristive crossbar** — [`array::CrossbarArray`], a grid of
//!   `rram-jart` VCM cells, plus the [`scheme`] module implementing the V/2
//!   (and V/3) biasing used while writing.
//! * **Memory controller** — [`controller`], with the init-file and
//!   stimulus-file formats and their execution.
//! * **Crosstalk hub** — [`crosstalk::CrosstalkHub`], which redistributes
//!   filament temperatures between cells using the α coefficients extracted
//!   by `rram-fem` (Eq. 5).
//!
//! Four simulation engines drive the array: the scalar ideal-driver
//! [`engine::PulseEngine`], the struct-of-arrays
//! [`batched::BatchedEngine`] that integrates every cell in one kernel call
//! per sub-step (the fast path for long hammer campaigns on large arrays),
//! the MNA-backed [`detailed::DetailedCrossbar`] including wiring
//! parasitics, which also powers the [`sneak`]-path analysis, and the
//! table-driven reduced-order [`surrogate::SurrogateEngine`] for
//! million-point campaign grids. All implement
//! the [`backend::HammerBackend`] trait, so the attack layer, the campaign
//! runner and the cross-engine agreement tests drive them interchangeably;
//! [`backend::BackendKind`] selects one declaratively at runtime.
//!
//! # Examples
//!
//! Hammering the centre cell of a 5×5 array and watching a half-selected
//! neighbour heat up:
//!
//! ```
//! use rram_crossbar::{CellAddress, EngineConfig, PulseEngine};
//! use rram_jart::{DeviceParams, DigitalState};
//! use rram_units::{Seconds, Volts};
//!
//! let mut engine = PulseEngine::with_uniform_coupling(
//!     5, 5, DeviceParams::default(), 0.12, EngineConfig::default());
//! let aggressor = CellAddress::new(2, 2);
//! engine.array_mut().cell_mut(aggressor).force_state(DigitalState::Lrs);
//! for _ in 0..10 {
//!     engine.apply_pulse(aggressor, Volts(1.05), Seconds(50e-9));
//! }
//! assert!(engine.hub().delta(2, 1).0 > 10.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod array;
pub mod backend;
pub mod batched;
pub mod controller;
pub mod crosstalk;
pub mod detailed;
pub mod engine;
pub mod scheme;
pub mod sneak;
pub mod surrogate;

pub use array::CrossbarArray;
pub use backend::{BackendKind, HammerBackend, ThermalReadout};
pub use batched::BatchedEngine;
pub use controller::{ControllerReport, InitState, MemoryController, Operation, Stimulus};
pub use crosstalk::CrosstalkHub;
pub use detailed::{DetailedCrossbar, WiringParasitics};
pub use engine::{CellSnapshot, EngineConfig, PulseEngine};
pub use scheme::{CellAddress, LineBias, WriteScheme};
pub use sneak::{analyze_read, read_margin, ReadAnalysis, ReadBias, ReadMarginReport};
pub use surrogate::{SurrogateEngine, SurrogateModel};
