//! The table-driven reduced-order surrogate engine.
//!
//! Million-point campaign grids do not need bit-exact physics: they need the
//! drift *trajectory* of every cell to be right to a few tens of percent so
//! that flip counts, disturb margins and Pareto sweeps come out on the same
//! contours. [`SurrogateEngine`] trades the per-sub-step Newton solve of the
//! operating point — the dominant cost of the batched engine's actively
//! biased lanes — for table lookups fitted **once** from the same kernel
//! physics the batched engine integrates:
//!
//! * a 3-D grid over (cell voltage × crosstalk ΔT × concentration) stores
//!   the *kinetic factor* `ln(|rate| / prefactor)` — the Arrhenius × sinh
//!   part of the drift rate that needs the operating-point solve — and is
//!   interpolated trilinearly in log space;
//! * the analytic prefactor (vacancy supply × concentration window, see
//!   [`rram_jart::kinetics::rate_prefactor`]) is multiplied back exactly,
//!   so the rate still vanishes exactly at the state bounds;
//! * a 2-D grid over (cell voltage × concentration) stores the
//!   active-region power, from which the exported filament temperature is
//!   reconstructed through the exact [`filament_temperature`] law — the
//!   thermal-crosstalk feedback loop stays closed;
//! * a second 2-D grid over the same axes stores the cell current, so the
//!   conduction-charge lane accrues `|I|·dt` off-table like the batched
//!   engine instead of reading zero.
//!
//! Zero-voltage lanes take the *exact* relax update (bit-identical to the
//! batched engine's gap phase), and queries outside the fitted domain fall
//! back to the exact physics per lane, so the surrogate degrades to slow
//! rather than wrong. Accuracy against the batched engine is pinned by
//! `tests/engine_agreement.rs`: flip sets agree on the fig3a-style grid and
//! victim drift stays within the documented band (see the README backend
//! table). Bit-exactness is *not* claimed anywhere: campaign fingerprints
//! tag the backend, so surrogate shards can never be merged into (or
//! mistaken for) batched/pulse results.

use crate::array::CrossbarArray;
use crate::backend::{HammerBackend, ThermalReadout};
use crate::crosstalk::CrosstalkHub;
use crate::engine::EngineConfig;
use crate::scheme::CellAddress;
use rram_jart::current::solve_operating_point;
use rram_jart::kinetics::{concentration_rate, rate_prefactor, Direction};
use rram_jart::thermal::filament_temperature;
use rram_jart::{DeviceParams, DigitalState};
use rram_units::{Kelvin, Seconds, Volts};

/// `ln` sentinel for a kinetic factor that underflowed to zero: `exp` of
/// this is the smallest positive subnormal, which the prefactor then takes
/// to an exact zero.
const MIN_LOG: f64 = -745.0;

/// A uniform interpolation axis with at least two nodes.
#[derive(Debug, Clone, PartialEq)]
struct Axis {
    lo: f64,
    hi: f64,
    nodes: usize,
}

impl Axis {
    fn new(lo: f64, hi: f64, nodes: usize) -> Self {
        assert!(nodes >= 2, "an axis needs at least two nodes");
        assert!(hi > lo, "axis bounds must be increasing");
        Axis { lo, hi, nodes }
    }

    /// Node coordinate of index `i`.
    fn value(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / (self.nodes - 1) as f64
    }

    /// Cell index and in-cell fraction for a (clamped) query.
    #[inline]
    fn locate(&self, x: f64) -> (usize, f64) {
        let span = (self.nodes - 1) as f64;
        let t = ((x - self.lo) / (self.hi - self.lo) * span).clamp(0.0, span);
        let i = (t as usize).min(self.nodes - 2);
        (i, t - i as f64)
    }
}

/// The fitted reduced-order model: kinetic-factor and power tables plus the
/// device parameters they were fitted from.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateModel {
    params: DeviceParams,
    v_axis: Axis,
    dt_axis: Axis,
    /// Concentration axis, uniform in `ln n` (queries locate with `n.ln()`).
    n_axis: Axis,
    /// `ln(|rate| / prefactor)`, indexed `[v][ΔT][n]` (row-major).
    log_kinetic: Vec<f64>,
    /// Active-region power, indexed `[v][n]` (row-major).
    power: Vec<f64>,
    /// Signed cell current, indexed `[v][n]` (row-major).
    current: Vec<f64>,
}

impl SurrogateModel {
    /// Fits a model for `params` covering cell voltages in
    /// `[-v_max, v_max]` and crosstalk ΔT in `[0, dt_max]` (the
    /// concentration axis always spans the full `[n_min, n_max]` state
    /// range). Node counts are chosen so that the voltage grid is ~0.05 V
    /// and the ΔT grid ~12 K — fine enough that the log-space trilinear
    /// interpolation holds the drift rate to a few tens of percent.
    ///
    /// Fitting evaluates the exact kernel physics
    /// ([`solve_operating_point`] → [`filament_temperature`] →
    /// [`concentration_rate`]) at every node: the surrogate is a compressed
    /// replay of the batched engine's own rate law, not an independent
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if `v_max` or `dt_max` is not positive and finite.
    pub fn fit(params: &DeviceParams, v_max: f64, dt_max: f64) -> Self {
        assert!(v_max.is_finite() && v_max > 0.0, "v_max must be positive");
        assert!(
            dt_max.is_finite() && dt_max > 0.0,
            "dt_max must be positive"
        );
        // ~0.02 V voltage cells (odd count so v = 0 is a node): the log
        // kinetic factor is steep in v — a switching-relevant bias range
        // spans orders of magnitude of rate — and half-selected victims sit
        // at scheme fractions of the write amplitude, i.e. generically
        // mid-cell, so the v axis is dense.
        let v_nodes = (2.0 * v_max / 0.02).ceil() as usize | 1;
        let v_nodes = v_nodes.max(51);
        let dt_nodes = ((dt_max / 10.0).ceil() as usize + 1).max(11);
        // The concentration axis lives in *log* space: the active-region
        // voltage divider (and with it the whole kinetic factor) varies
        // with the filament's resistance, i.e. roughly with ln n, fastest
        // near the HRS bound — exactly where disturb campaigns integrate
        // the victim. A uniform linear grid would lump that whole decade
        // into its first cell no matter how many nodes it spends.
        let n_nodes = 97;
        let v_axis = Axis::new(-v_max, v_max, v_nodes);
        let dt_axis = Axis::new(0.0, dt_max, dt_nodes);
        let n_axis = Axis::new(params.n_min.ln(), params.n_max.ln(), n_nodes);

        let mut log_kinetic = vec![MIN_LOG; v_nodes * dt_nodes * n_nodes];
        let mut power = vec![0.0; v_nodes * n_nodes];
        let mut current = vec![0.0; v_nodes * n_nodes];
        // Degenerate nodes are nudged off the exact zero so the stored
        // factor stays finite; the nudge is far below the grid resolution.
        let v_eps = 1e-3 * (v_axis.hi - v_axis.lo) / (v_nodes - 1) as f64;

        for iv in 0..v_nodes {
            let v_node = v_axis.value(iv);
            let v = if v_node == 0.0 { v_eps } else { v_node };
            for i_n in 0..n_nodes {
                let n_node = n_axis.value(i_n).exp();
                // Pull window-zeroed nodes slightly inside the state range:
                // the analytic prefactor restores the exact zero at the
                // bound, while the stored kinetic factor stays smooth.
                let n = n_node.clamp(params.n_min * (1.0 + 1e-6), params.n_max * (1.0 - 1e-6));
                let op = solve_operating_point(params, v, n);
                power[iv * n_nodes + i_n] = op.power_active;
                current[iv * n_nodes + i_n] = op.current;
                let direction = Direction::from_voltage(op.v_active);
                let prefactor = rate_prefactor(params, n, direction);
                for idt in 0..dt_nodes {
                    let delta_t = dt_axis.value(idt);
                    let temperature = filament_temperature(params, op.power_active, delta_t);
                    let magnitude = concentration_rate(params, op.v_active, temperature, n).abs();
                    let log = if magnitude > 0.0 && prefactor > 0.0 {
                        (magnitude / prefactor).ln()
                    } else {
                        MIN_LOG
                    };
                    log_kinetic[(iv * dt_nodes + idt) * n_nodes + i_n] = log;
                }
            }
        }

        SurrogateModel {
            params: params.clone(),
            v_axis,
            dt_axis,
            n_axis,
            log_kinetic,
            power,
            current,
        }
    }

    /// The device parameters the model was fitted from.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Whether a `(v_cell, ΔT)` query lies inside the fitted grids.
    #[inline]
    pub fn in_domain(&self, v_cell: f64, delta_t: f64) -> bool {
        v_cell >= self.v_axis.lo && v_cell <= self.v_axis.hi && delta_t <= self.dt_axis.hi
    }

    /// Trilinear interpolation of the kinetic factor.
    #[inline]
    fn kinetic_at(&self, v_cell: f64, delta_t: f64, n: f64) -> f64 {
        let (iv, fv) = self.v_axis.locate(v_cell);
        let (idt, fdt) = self.dt_axis.locate(delta_t.max(0.0));
        let (i_n, fn_) = self.n_axis.locate(n.ln());
        let nn = self.n_axis.nodes;
        let ndt = self.dt_axis.nodes;
        let at = |a: usize, b: usize, c: usize| self.log_kinetic[(a * ndt + b) * nn + c];
        let mut corners = [0.0_f64; 2];
        for (slot, dv) in corners.iter_mut().zip(0..2) {
            let c00 = at(iv + dv, idt, i_n);
            let c01 = at(iv + dv, idt, i_n + 1);
            let c10 = at(iv + dv, idt + 1, i_n);
            let c11 = at(iv + dv, idt + 1, i_n + 1);
            let lo = c00 + (c01 - c00) * fn_;
            let hi = c10 + (c11 - c10) * fn_;
            *slot = lo + (hi - lo) * fdt;
        }
        corners[0] + (corners[1] - corners[0]) * fv
    }

    /// Bilinear interpolation of a `[v][n]`-indexed table.
    #[inline]
    fn bilinear_at(&self, table: &[f64], v_cell: f64, n: f64) -> f64 {
        let (iv, fv) = self.v_axis.locate(v_cell);
        let (i_n, fn_) = self.n_axis.locate(n.ln());
        let nn = self.n_axis.nodes;
        let at = |a: usize, c: usize| table[a * nn + c];
        let lo = at(iv, i_n) + (at(iv, i_n + 1) - at(iv, i_n)) * fn_;
        let hi = at(iv + 1, i_n) + (at(iv + 1, i_n + 1) - at(iv + 1, i_n)) * fn_;
        lo + (hi - lo) * fv
    }

    /// Bilinear interpolation of the active-region power.
    #[inline]
    fn power_at(&self, v_cell: f64, n: f64) -> f64 {
        self.bilinear_at(&self.power, v_cell, n)
    }

    /// Bilinear interpolation of the signed cell current.
    #[inline]
    fn current_at(&self, v_cell: f64, n: f64) -> f64 {
        self.bilinear_at(&self.current, v_cell, n)
    }

    /// Reduced-order drift rate (10²⁶ m⁻³/s) and filament temperature (K)
    /// for a cell at concentration `n` under `v_cell` and imported
    /// crosstalk `delta_t`.
    ///
    /// Zero voltage returns the exact relax pair; queries outside the
    /// fitted domain fall back to the exact physics (slow but never wrong).
    pub fn rate_and_temperature(&self, v_cell: f64, delta_t: f64, n: f64) -> (f64, f64) {
        let (rate, temperature, _) = self.rate_temperature_and_current(v_cell, delta_t, n);
        (rate, temperature)
    }

    /// [`SurrogateModel::rate_and_temperature`] plus the (signed) cell
    /// current — the triple the integration kernel's model closure serves,
    /// so the conduction-charge lane accrues `|I|·dt` like the batched
    /// engine does.
    pub fn rate_temperature_and_current(
        &self,
        v_cell: f64,
        delta_t: f64,
        n: f64,
    ) -> (f64, f64, f64) {
        if v_cell == 0.0 {
            return (0.0, filament_temperature(&self.params, 0.0, delta_t), 0.0);
        }
        if !self.in_domain(v_cell, delta_t) {
            return self.exact(v_cell, delta_t, n);
        }
        let power = self.power_at(v_cell, n).max(0.0);
        let temperature = filament_temperature(&self.params, power, delta_t);
        let direction = Direction::from_voltage(v_cell);
        let prefactor = rate_prefactor(&self.params, n, direction);
        let magnitude = prefactor * self.kinetic_at(v_cell, delta_t, n).exp();
        let rate = match direction {
            Direction::Reset => -magnitude,
            _ => magnitude,
        };
        (rate, temperature, self.current_at(v_cell, n))
    }

    /// The exact (operating-point-solved) rate/temperature/current triple —
    /// the out-of-domain fallback and the fitting reference.
    fn exact(&self, v_cell: f64, delta_t: f64, n: f64) -> (f64, f64, f64) {
        let op = solve_operating_point(&self.params, v_cell, n);
        let temperature = filament_temperature(&self.params, op.power_active, delta_t);
        let rate = concentration_rate(&self.params, op.v_active, temperature, n);
        (rate, temperature, op.current)
    }
}

/// The reduced-order surrogate engine: the batched engine's array/hub
/// organisation with the drift rate served from a [`SurrogateModel`].
#[derive(Debug, Clone)]
pub struct SurrogateEngine {
    array: CrossbarArray,
    hub: CrosstalkHub,
    config: EngineConfig,
    model: SurrogateModel,
    /// Simulated time elapsed, s.
    elapsed: f64,
    /// Reused per-cell voltage buffer (row-major), filled once per pulse.
    voltages: Vec<f64>,
}

impl SurrogateEngine {
    /// Creates an engine around an existing (homogeneous) array and hub,
    /// fitting the model to the array's device parameters. The voltage
    /// domain covers 1.25× the configured write amplitude (minimum 1.5 V)
    /// so every scheme-derived line bias interpolates instead of falling
    /// back.
    ///
    /// # Panics
    ///
    /// Panics if the hub dimensions do not match the array, or if the array
    /// carries a per-cell parameter table (the single fitted model cannot
    /// represent heterogeneous cells — run `batched` for Monte Carlo
    /// variability campaigns).
    pub fn new(array: CrossbarArray, hub: CrosstalkHub, config: EngineConfig) -> Self {
        assert_eq!(array.rows(), hub.rows(), "row count mismatch");
        assert_eq!(array.cols(), hub.cols(), "column count mismatch");
        assert!(
            array.params_table().is_none(),
            "the surrogate backend requires homogeneous device parameters"
        );
        let v_max = (1.25 * config.v_write.0.abs()).max(1.5);
        let model = SurrogateModel::fit(array.params(), v_max, 250.0);
        let cells = array.len();
        SurrogateEngine {
            array,
            hub,
            config,
            model,
            elapsed: 0.0,
            voltages: vec![0.0; cells],
        }
    }

    /// Convenience constructor mirroring
    /// [`crate::BatchedEngine::with_uniform_coupling`].
    pub fn with_uniform_coupling(
        rows: usize,
        cols: usize,
        params: DeviceParams,
        nearest_alpha: f64,
        config: EngineConfig,
    ) -> Self {
        let array = CrossbarArray::new(rows, cols, params);
        let hub = CrosstalkHub::two_ring(rows, cols, nearest_alpha, Seconds(30e-9));
        SurrogateEngine::new(array, hub, config)
    }

    /// The underlying array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// The fitted reduced-order model.
    pub fn model(&self) -> &SurrogateModel {
        &self.model
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn advance(&mut self, selected: Option<(CellAddress, Volts)>, duration: Seconds) {
        let mut remaining = duration.0;
        let substep = self.config.substep(selected.is_some());

        // Gap phase: identical to the batched engine's relax fast path —
        // the surrogate only replaces the *biased* rate evaluation.
        let Some((address, amplitude)) = selected else {
            while remaining > 0.0 {
                let dt = remaining.min(substep);
                self.array.import_crosstalk(self.hub.deltas());
                self.array.relax_lanes(Seconds(dt));
                self.hub.update_batched(
                    self.array.temperatures(),
                    self.config.ambient,
                    Seconds(dt),
                );
                remaining -= dt;
                self.elapsed += dt;
            }
            return;
        };

        self.voltages.clear();
        let bias =
            self.config
                .scheme
                .line_bias(self.array.rows(), self.array.cols(), address, amplitude);
        for row in 0..self.array.rows() {
            for col in 0..self.array.cols() {
                self.voltages
                    .push(bias.cell_voltage(CellAddress::new(row, col)).0);
            }
        }

        let model = &self.model;
        while remaining > 0.0 {
            let dt = remaining.min(substep);
            self.array.import_crosstalk(self.hub.deltas());
            self.array
                .step_lanes_surrogate(&self.voltages, Seconds(dt), |_, v, delta, n| {
                    model.rate_temperature_and_current(v, delta, n)
                });
            self.hub
                .update_batched(self.array.temperatures(), self.config.ambient, Seconds(dt));
            remaining -= dt;
            self.elapsed += dt;
        }
    }
}

impl HammerBackend for SurrogateEngine {
    fn label(&self) -> &'static str {
        "surrogate"
    }

    fn rows(&self) -> usize {
        self.array.rows()
    }

    fn cols(&self) -> usize {
        self.array.cols()
    }

    fn apply_pulse(&mut self, selected: CellAddress, amplitude: Volts, length: Seconds) {
        self.advance(Some((selected, amplitude)), length);
    }

    fn idle(&mut self, duration: Seconds) {
        self.advance(None, duration);
    }

    fn read(&self, address: CellAddress) -> DigitalState {
        self.array.read(address)
    }

    fn normalized_state(&self, address: CellAddress) -> f64 {
        self.array.cell(address).normalized_state()
    }

    fn force_state(&mut self, address: CellAddress, state: DigitalState) {
        self.array.cell_mut(address).force_state(state);
    }

    fn force_normalized_state(&mut self, address: CellAddress, normalized: f64) {
        self.array
            .cell_mut(address)
            .force_normalized_state(normalized);
    }

    fn thermal_readout(&self, address: CellAddress) -> ThermalReadout {
        let cell = self.array.cell(address);
        ThermalReadout {
            temperature: cell.temperature(),
            crosstalk: cell.crosstalk_delta(),
            normalized_state: cell.normalized_state(),
        }
    }

    fn hub(&self) -> &CrosstalkHub {
        &self.hub
    }

    fn hub_mut(&mut self) -> &mut CrosstalkHub {
        &mut self.hub
    }

    fn elapsed(&self) -> Seconds {
        Seconds(self.elapsed)
    }

    fn reset(&mut self) {
        self.array.for_each_cell_mut(|_, mut cell| {
            cell.force_state(DigitalState::Hrs);
            cell.set_crosstalk_delta(Kelvin(0.0));
        });
        self.hub.reset();
        self.elapsed = 0.0;
    }

    fn read_all(&self) -> Vec<DigitalState> {
        self.array.read_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batched::BatchedEngine;
    use rram_units::SiExt;

    fn model() -> SurrogateModel {
        SurrogateModel::fit(&DeviceParams::default(), 1.5, 250.0)
    }

    #[test]
    fn grid_nodes_reproduce_the_exact_rate() {
        // At grid nodes the interpolation is exact, so the reconstructed
        // rate must match the physics to rounding (away from the nudged
        // degenerate nodes).
        let m = model();
        let p = DeviceParams::default();
        for &(v, delta) in &[(1.05, 0.0), (0.525, 48.0), (-0.35, 96.0)] {
            // Snap to the nearest actual node coordinates.
            let (iv, _) = m.v_axis.locate(v);
            let (idt, _) = m.dt_axis.locate(delta);
            let v = m.v_axis.value(iv);
            let delta = m.dt_axis.value(idt);
            let n = m.n_axis.value(48).exp();
            if v == 0.0 {
                continue;
            }
            let (rate, temperature) = m.rate_and_temperature(v, delta, n);
            let op = solve_operating_point(&p, v, n);
            let t_exact = filament_temperature(&p, op.power_active, delta);
            let exact = concentration_rate(&p, op.v_active, t_exact, n);
            assert!(
                (temperature / t_exact - 1.0).abs() < 1e-9,
                "T {temperature} vs {t_exact} at v={v}"
            );
            assert!(
                (rate / exact - 1.0).abs() < 1e-9,
                "rate {rate} vs {exact} at v={v} ΔT={delta}"
            );
        }
    }

    #[test]
    fn off_node_rates_stay_within_tens_of_percent() {
        let m = model();
        let p = DeviceParams::default();
        // Deliberately mid-cell coordinates across the attack-relevant
        // range.
        for &(v, delta, x) in &[
            (1.027, 6.0, 0.3),
            (0.531, 55.0, 0.1),
            (0.513, 110.0, 0.05),
            (-0.349, 33.0, 0.8),
        ] {
            let n = p.n_min + x * (p.n_max - p.n_min);
            let (rate, _) = m.rate_and_temperature(v, delta, n);
            let op = solve_operating_point(&p, v, n);
            let t = filament_temperature(&p, op.power_active, delta);
            let exact = concentration_rate(&p, op.v_active, t, n);
            let ratio = rate / exact;
            assert!(
                (0.5..2.0).contains(&ratio),
                "rate ratio {ratio} at v={v} ΔT={delta} n={n}"
            );
        }
    }

    #[test]
    fn zero_voltage_and_out_of_domain_are_exact() {
        let m = model();
        let p = DeviceParams::default();
        let (rate, t) = m.rate_and_temperature(0.0, 37.0, 1.0);
        assert_eq!(rate, 0.0);
        assert_eq!(t, filament_temperature(&p, 0.0, 37.0));
        // Beyond the fitted voltage domain the fallback is the exact rate.
        let (rate, t) = m.rate_and_temperature(2.5, 10.0, 1.0);
        let op = solve_operating_point(&p, 2.5, 1.0);
        let t_exact = filament_temperature(&p, op.power_active, 10.0);
        assert_eq!(t.to_bits(), t_exact.to_bits());
        assert_eq!(
            rate.to_bits(),
            concentration_rate(&p, op.v_active, t_exact, 1.0).to_bits()
        );
        // ... and likewise beyond the ΔT domain.
        assert!(!m.in_domain(1.0, 300.0));
        assert!(m.in_domain(1.0, 250.0));
    }

    #[test]
    fn surrogate_burst_tracks_the_batched_engine() {
        // A hammer burst on a 5×5 array: aggressor switches identically,
        // the victim's (tiny) drift lands within a factor of two.
        let config = EngineConfig::default();
        let mut surrogate = SurrogateEngine::with_uniform_coupling(
            5,
            5,
            DeviceParams::default(),
            0.12,
            config.clone(),
        );
        let mut batched =
            BatchedEngine::with_uniform_coupling(5, 5, DeviceParams::default(), 0.12, config);
        let aggressor = CellAddress::new(2, 2);
        let victim = CellAddress::new(2, 1);
        for engine in [&mut surrogate as &mut dyn HammerBackend, &mut batched] {
            engine.force_state(aggressor, DigitalState::Lrs);
            for _ in 0..30 {
                engine.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
                engine.idle(50.0.ns());
            }
        }
        assert_eq!(
            HammerBackend::elapsed(&surrogate).0,
            HammerBackend::elapsed(&batched).0
        );
        let (s, b) = (
            surrogate.normalized_state(victim),
            batched.normalized_state(victim),
        );
        assert!(b > 0.0);
        let ratio = s / b;
        assert!(
            (0.5..2.0).contains(&ratio),
            "victim drift ratio {ratio}: surrogate {s} vs batched {b}"
        );
        // Crosstalk reaching the victim agrees too (the power table feeds
        // the same hub).
        let (sx, bx) = (
            surrogate.thermal_readout(victim).crosstalk.0,
            batched.thermal_readout(victim).crosstalk.0,
        );
        assert!((sx / bx - 1.0).abs() < 0.1, "victim ΔT {sx} vs {bx}");
    }

    #[test]
    fn conduction_charge_accrues_off_table_close_to_batched() {
        // The current table feeds the charge lane: aggressor and victim
        // charges track the batched engine's within a tight band, and
        // never-biased cells accrue none in either engine.
        let config = EngineConfig::default();
        let mut surrogate = SurrogateEngine::with_uniform_coupling(
            5,
            5,
            DeviceParams::default(),
            0.12,
            config.clone(),
        );
        let mut batched =
            BatchedEngine::with_uniform_coupling(5, 5, DeviceParams::default(), 0.12, config);
        let aggressor = CellAddress::new(2, 2);
        let victim = CellAddress::new(2, 1);
        for engine in [&mut surrogate as &mut dyn HammerBackend, &mut batched] {
            engine.force_state(aggressor, DigitalState::Lrs);
            for _ in 0..10 {
                engine.apply_pulse(aggressor, Volts(1.05), 50.0.ns());
                engine.idle(50.0.ns());
            }
        }
        for address in [aggressor, victim] {
            let lane = address.row * 5 + address.col;
            let s = surrogate.array().bank().charges()[lane];
            let b = batched.array().bank().charges()[lane];
            assert!(b > 0.0, "batched charge must accrue at {address:?}");
            let ratio = s / b;
            assert!(
                (0.85..1.18).contains(&ratio),
                "charge ratio {ratio} at {address:?}: surrogate {s} vs batched {b}"
            );
        }
        // A fully unselected cell sees exactly 0 V under the half scheme.
        let far = CellAddress::new(0, 0);
        assert_eq!(
            surrogate.array().bank().charges()[far.row * 5 + far.col],
            0.0
        );
        assert_eq!(batched.array().bank().charges()[far.row * 5 + far.col], 0.0);
    }

    #[test]
    fn reset_restores_a_pristine_array() {
        let mut e = SurrogateEngine::with_uniform_coupling(
            3,
            3,
            DeviceParams::default(),
            0.15,
            EngineConfig::default(),
        );
        let cell = CellAddress::new(1, 1);
        e.force_state(cell, DigitalState::Lrs);
        e.apply_pulse(cell, Volts(1.05), 50.0.ns());
        e.reset();
        assert_eq!(e.read(cell), DigitalState::Hrs);
        assert_eq!(HammerBackend::elapsed(&e).0, 0.0);
        assert!(e.hub().deltas().iter().all(|&d| d == 0.0));
    }

    #[test]
    #[should_panic(expected = "homogeneous device parameters")]
    fn per_cell_tables_are_rejected() {
        let mut array = CrossbarArray::new(3, 3, DeviceParams::default());
        array.set_params_table(vec![DeviceParams::default(); 9]);
        let hub = CrosstalkHub::two_ring(3, 3, 0.15, Seconds(30e-9));
        let _ = SurrogateEngine::new(array, hub, EngineConfig::default());
    }
}
