//! The detailed, MNA-backed crossbar engine.
//!
//! This engine models the crossbar as an electrical network with explicit
//! word/bit-line segment resistances and driver output resistances, and
//! solves every pulse with the `rram-circuit` transient simulator. It is the
//! reference the fast ideal-driver engine is validated against, and it is
//! what the sneak-path analysis builds on. It is orders of magnitude slower
//! than [`crate::engine::PulseEngine`], so hammer campaigns do not use it.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::backend::{HammerBackend, ThermalReadout};
use crate::crosstalk::CrosstalkHub;
use crate::scheme::{CellAddress, WriteScheme};
use rram_circuit::{
    run_transient, Netlist, NewtonOptions, NodeId, NonlinearTwoTerminal, TransientOptions, Waveform,
};
use rram_jart::{DeviceParams, DigitalState, JartDevice};
use rram_units::{Kelvin, Ohms, Seconds, Volts};

/// Electrical parasitics of the crossbar wiring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WiringParasitics {
    /// Resistance of one line segment between adjacent cells, Ω.
    pub segment_resistance: Ohms,
    /// Output resistance of each line driver, Ω.
    pub driver_resistance: Ohms,
}

impl Default for WiringParasitics {
    fn default() -> Self {
        WiringParasitics {
            segment_resistance: Ohms(2.5),
            driver_resistance: Ohms(50.0),
        }
    }
}

/// Adapter exposing a shared [`JartDevice`] to the circuit simulator.
pub struct SharedCell {
    device: Rc<RefCell<JartDevice>>,
}

impl fmt::Debug for SharedCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let device = self.device.borrow();
        write!(
            f,
            "SharedCell(n = {:.3}, T = {:.1} K)",
            device.concentration(),
            device.temperature().0
        )
    }
}

impl NonlinearTwoTerminal for SharedCell {
    fn current(&self, voltage: f64) -> f64 {
        let device = self.device.borrow();
        rram_jart::current::solve_operating_point(device.params(), voltage, device.concentration())
            .current
    }

    fn commit(&mut self, voltage: f64, dt: f64) {
        self.device.borrow_mut().step(Volts(voltage), Seconds(dt));
    }
}

/// The detailed crossbar engine.
pub struct DetailedCrossbar {
    rows: usize,
    cols: usize,
    devices: Vec<Rc<RefCell<JartDevice>>>,
    parasitics: WiringParasitics,
    hub: CrosstalkHub,
    scheme: WriteScheme,
    ambient: Kelvin,
    /// Transient time step used when pulses are applied through the
    /// [`HammerBackend`] interface (which carries no per-call `dt`).
    dt: Seconds,
    /// Simulated time elapsed, s.
    elapsed: f64,
}

impl fmt::Debug for DetailedCrossbar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DetailedCrossbar({}x{}, scheme = {:?})",
            self.rows, self.cols, self.scheme
        )
    }
}

impl DetailedCrossbar {
    /// Creates a detailed crossbar with every cell in HRS.
    ///
    /// # Panics
    ///
    /// Panics if the hub dimensions do not match `rows`/`cols`.
    pub fn new(
        rows: usize,
        cols: usize,
        params: DeviceParams,
        parasitics: WiringParasitics,
        hub: CrosstalkHub,
        scheme: WriteScheme,
    ) -> Self {
        assert_eq!(hub.rows(), rows, "hub row mismatch");
        assert_eq!(hub.cols(), cols, "hub column mismatch");
        let ambient = Kelvin(params.ambient_temperature);
        let devices = (0..rows * cols)
            .map(|_| Rc::new(RefCell::new(JartDevice::new(params.clone()))))
            .collect();
        DetailedCrossbar {
            rows,
            cols,
            devices,
            parasitics,
            hub,
            scheme,
            ambient,
            dt: Seconds(10e-9),
            elapsed: 0.0,
        }
    }

    /// Sets the transient time step used by pulses applied through the
    /// [`HammerBackend`] interface (default 10 ns).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn with_time_step(mut self, dt: Seconds) -> Self {
        assert!(dt.0 > 0.0, "time step must be positive");
        self.dt = dt;
        self
    }

    /// Installs a per-cell parameter table (row-major): every device is
    /// recreated in the HRS at ambient under its table entry — the detailed
    /// engine's side of the Monte Carlo variability support, matching
    /// [`crate::CrossbarArray::set_params_table`].
    ///
    /// # Panics
    ///
    /// Panics if the table length does not match the cell count.
    pub fn set_params_table(&mut self, table: &[DeviceParams]) {
        assert_eq!(
            table.len(),
            self.rows * self.cols,
            "params table length mismatch"
        );
        for (device, params) in self.devices.iter().zip(table) {
            *device.borrow_mut() = JartDevice::new(params.clone());
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn device(&self, address: CellAddress) -> &Rc<RefCell<JartDevice>> {
        assert!(
            address.row < self.rows && address.col < self.cols,
            "cell out of range"
        );
        &self.devices[address.row * self.cols + address.col]
    }

    /// Forces the digital state of one cell.
    pub fn force_state(&mut self, address: CellAddress, state: DigitalState) {
        self.device(address).borrow_mut().force_state(state);
    }

    /// Digital read-out of one cell.
    pub fn read(&self, address: CellAddress) -> DigitalState {
        self.device(address).borrow().digital_state()
    }

    /// Normalised internal state of one cell.
    pub fn normalized_state(&self, address: CellAddress) -> f64 {
        self.device(address).borrow().normalized_state()
    }

    /// The crosstalk hub.
    pub fn hub(&self) -> &CrosstalkHub {
        &self.hub
    }

    /// Builds the MNA netlist of the array for the given line voltages.
    ///
    /// Word line `r` is driven at its column-0 end, bit line `c` at its
    /// row-0 end, each through the driver resistance; consecutive crosspoints
    /// on a line are connected by the segment resistance.
    fn build_netlist(&self, word_line_v: &[f64], bit_line_v: &[f64]) -> Netlist {
        let mut netlist = Netlist::new();

        // Node names: wl_<r>_<c> and bl_<r>_<c> are the word/bit line nodes
        // at crosspoint (r, c).
        for (r, &line_v) in word_line_v.iter().enumerate() {
            let driver = netlist.node(&format!("wl_drv_{r}"));
            netlist.add_voltage_source(driver, NodeId::GROUND, Waveform::Dc(line_v));
            let first = netlist.node(&format!("wl_{r}_0"));
            netlist.add_resistor(driver, first, self.parasitics.driver_resistance.0);
            for c in 1..self.cols {
                let prev = netlist.node(&format!("wl_{r}_{}", c - 1));
                let here = netlist.node(&format!("wl_{r}_{c}"));
                netlist.add_resistor(prev, here, self.parasitics.segment_resistance.0);
            }
        }
        for (c, &line_v) in bit_line_v.iter().enumerate() {
            let driver = netlist.node(&format!("bl_drv_{c}"));
            netlist.add_voltage_source(driver, NodeId::GROUND, Waveform::Dc(line_v));
            let first = netlist.node(&format!("bl_0_{c}"));
            netlist.add_resistor(driver, first, self.parasitics.driver_resistance.0);
            for r in 1..self.rows {
                let prev = netlist.node(&format!("bl_{}_{c}", r - 1));
                let here = netlist.node(&format!("bl_{r}_{c}"));
                netlist.add_resistor(prev, here, self.parasitics.segment_resistance.0);
            }
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                let wl = netlist.node(&format!("wl_{r}_{c}"));
                let bl = netlist.node(&format!("bl_{r}_{c}"));
                let cell = SharedCell {
                    device: Rc::clone(&self.devices[r * self.cols + c]),
                };
                netlist.add_nonlinear(wl, bl, Box::new(cell));
            }
        }
        netlist
    }

    /// Applies one write pulse to `selected` with the configured scheme,
    /// solving the full network transient with the explicit time step `dt`
    /// (the [`HammerBackend`] interface uses the configured default instead).
    ///
    /// # Panics
    ///
    /// Panics if the transient solver fails to converge (which indicates a
    /// malformed network rather than a recoverable condition).
    pub fn apply_pulse_with_dt(
        &mut self,
        selected: CellAddress,
        amplitude: Volts,
        length: Seconds,
        dt: Seconds,
    ) {
        let bias = self
            .scheme
            .line_bias(self.rows, self.cols, selected, amplitude);
        let wl: Vec<f64> = bias.word_lines.iter().map(|v| v.0).collect();
        let bl: Vec<f64> = bias.bit_lines.iter().map(|v| v.0).collect();

        // The crosstalk state evolves on the hub's time constant, so the
        // pulse is cut into slices: electrical transient → hub update →
        // next slice, mirroring the fast engine's sub-stepping.
        let hub_slice = 10e-9_f64.max(dt.0);
        let slices = (length.0 / hub_slice).ceil().max(1.0) as usize;
        let slice_len = length.0 / slices as f64;

        for _ in 0..slices {
            // Import the current crosstalk state into the devices.
            let deltas = self.hub.deltas().to_vec();
            for (idx, device) in self.devices.iter().enumerate() {
                device.borrow_mut().set_crosstalk_delta(Kelvin(deltas[idx]));
            }

            let mut netlist = self.build_netlist(&wl, &bl);
            run_transient(
                &mut netlist,
                TransientOptions {
                    dt: dt.0.min(slice_len),
                    t_stop: slice_len,
                    newton: NewtonOptions::default(),
                },
            )
            .expect("crossbar transient must converge");

            // Update the hub from the exported filament temperatures.
            let temperatures: Vec<f64> = self
                .devices
                .iter()
                .map(|d| d.borrow().exported_temperature().0)
                .collect();
            self.hub
                .update(&temperatures, self.ambient, Seconds(slice_len));
            self.elapsed += slice_len;
        }
    }
}

impl HammerBackend for DetailedCrossbar {
    fn label(&self) -> &'static str {
        "detailed"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn apply_pulse(&mut self, selected: CellAddress, amplitude: Volts, length: Seconds) {
        let dt = Seconds(self.dt.0.min(length.0));
        self.apply_pulse_with_dt(selected, amplitude, length, dt);
    }

    fn idle(&mut self, duration: Seconds) {
        // All schemes produce an all-grounded bias at zero amplitude, and the
        // dynamics reduce to thermal decay, which tolerates a coarser step.
        let dt = Seconds((self.dt.0 * 5.0).min(duration.0));
        self.apply_pulse_with_dt(CellAddress::new(0, 0), Volts(0.0), duration, dt);
    }

    fn read(&self, address: CellAddress) -> DigitalState {
        DetailedCrossbar::read(self, address)
    }

    fn normalized_state(&self, address: CellAddress) -> f64 {
        DetailedCrossbar::normalized_state(self, address)
    }

    fn force_state(&mut self, address: CellAddress, state: DigitalState) {
        DetailedCrossbar::force_state(self, address, state);
    }

    fn force_normalized_state(&mut self, address: CellAddress, normalized: f64) {
        self.device(address)
            .borrow_mut()
            .force_normalized_state(normalized);
    }

    fn thermal_readout(&self, address: CellAddress) -> ThermalReadout {
        let device = self.device(address).borrow();
        ThermalReadout {
            temperature: device.temperature(),
            crosstalk: device.crosstalk_delta(),
            normalized_state: device.normalized_state(),
        }
    }

    fn hub(&self) -> &CrosstalkHub {
        &self.hub
    }

    fn hub_mut(&mut self) -> &mut CrosstalkHub {
        &mut self.hub
    }

    fn elapsed(&self) -> Seconds {
        Seconds(self.elapsed)
    }

    fn reset(&mut self) {
        for device in &self.devices {
            let mut device = device.borrow_mut();
            device.force_state(DigitalState::Hrs);
            device.set_crosstalk_delta(Kelvin(0.0));
        }
        self.hub.reset();
        self.elapsed = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rram_units::SiExt;

    fn detailed(rows: usize, cols: usize) -> DetailedCrossbar {
        DetailedCrossbar::new(
            rows,
            cols,
            DeviceParams::default(),
            WiringParasitics::default(),
            CrosstalkHub::uniform(rows, cols, 0.12, 0.06, 0.03, Seconds(30e-9)),
            WriteScheme::HalfVoltage,
        )
    }

    #[test]
    fn set_pulse_switches_the_selected_cell_only() {
        let mut xbar = detailed(3, 3);
        let target = CellAddress::new(1, 1);
        xbar.apply_pulse_with_dt(target, Volts(1.05), 2.0.us(), 20.0.ns());
        assert_eq!(xbar.read(target), DigitalState::Lrs);
        for r in 0..3 {
            for c in 0..3 {
                if (r, c) != (1, 1) {
                    assert_eq!(
                        xbar.read(CellAddress::new(r, c)),
                        DigitalState::Hrs,
                        "cell ({r},{c}) was disturbed"
                    );
                }
            }
        }
    }

    #[test]
    fn hammering_an_lrs_cell_heats_its_neighbours() {
        let mut xbar = detailed(3, 3);
        let aggressor = CellAddress::new(1, 1);
        xbar.force_state(aggressor, DigitalState::Lrs);
        for _ in 0..5 {
            xbar.apply_pulse_with_dt(aggressor, Volts(1.05), 50.0.ns(), 10.0.ns());
        }
        assert!(xbar.hub().delta(1, 0).0 > 10.0);
    }

    #[test]
    fn half_selected_cells_make_more_progress_than_unselected() {
        let mut xbar = detailed(3, 3);
        let aggressor = CellAddress::new(1, 1);
        xbar.force_state(aggressor, DigitalState::Lrs);
        for _ in 0..10 {
            xbar.apply_pulse_with_dt(aggressor, Volts(1.05), 100.0.ns(), 20.0.ns());
        }
        let half_selected = xbar.normalized_state(CellAddress::new(1, 0));
        let unselected = xbar.normalized_state(CellAddress::new(0, 0));
        assert!(
            half_selected > unselected,
            "half-selected {half_selected} vs unselected {unselected}"
        );
    }

    #[test]
    fn line_resistance_reduces_delivered_voltage() {
        // With large segment resistance the far cell of a long word line
        // switches more slowly than with negligible parasitics.
        let params = DeviceParams::default();
        let hub = |n| CrosstalkHub::disabled(1, n);
        let mut ideal = DetailedCrossbar::new(
            1,
            4,
            params.clone(),
            WiringParasitics {
                segment_resistance: Ohms(0.1),
                driver_resistance: Ohms(1.0),
            },
            hub(4),
            WriteScheme::HalfVoltage,
        );
        let mut resistive = DetailedCrossbar::new(
            1,
            4,
            params,
            WiringParasitics {
                segment_resistance: Ohms(500.0),
                driver_resistance: Ohms(500.0),
            },
            hub(4),
            WriteScheme::HalfVoltage,
        );
        let far = CellAddress::new(0, 3);
        // Make every cell on the word line LRS so sneak currents load the line.
        for c in 0..3 {
            ideal.force_state(CellAddress::new(0, c), DigitalState::Lrs);
            resistive.force_state(CellAddress::new(0, c), DigitalState::Lrs);
        }
        ideal.apply_pulse_with_dt(far, Volts(1.05), 300.0.ns(), 20.0.ns());
        resistive.apply_pulse_with_dt(far, Volts(1.05), 300.0.ns(), 20.0.ns());
        assert!(
            ideal.normalized_state(far) >= resistive.normalized_state(far),
            "ideal {} vs resistive {}",
            ideal.normalized_state(far),
            resistive.normalized_state(far)
        );
    }

    #[test]
    fn read_back_of_forced_states() {
        let mut xbar = detailed(2, 2);
        xbar.force_state(CellAddress::new(0, 1), DigitalState::Lrs);
        assert_eq!(xbar.read(CellAddress::new(0, 1)), DigitalState::Lrs);
        assert_eq!(xbar.read(CellAddress::new(1, 1)), DigitalState::Hrs);
    }
}
