//! The crosstalk hub (Eq. 5 of the paper).
//!
//! The hub owns the thermal-coupling state of the array: for every cell it
//! tracks the additional temperature contributed by all other cells,
//!
//! ```text
//!   ΔT_in(i,j) = Σ_{(k,l) ≠ (i,j)} α(i−k, j−l) · (T_out(k,l) − T₀)
//! ```
//!
//! driven through a first-order lag with time constant `τ_th`, so that the
//! gradual temperature build-up of Fig. 1 (Phase 2) is reproduced. Setting
//! `τ_th = 0` recovers the static relation. The α values come from the
//! finite-volume extraction of `rram-fem` and are looked up by cell offset,
//! which assumes translational invariance of the coupling away from the array
//! edges.
//!
//! The paper's Eq. 5 sums absolute temperatures; this implementation sums
//! temperature *rises* above ambient, which is the dimensionally consistent
//! reading of the same coefficients (an unpowered array then contributes no
//! crosstalk).

use serde::{Deserialize, Serialize};

use rram_fem::AlphaMatrix;
use rram_units::{Kelvin, Seconds};

/// The thermal crosstalk hub of one crossbar array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrosstalkHub {
    rows: usize,
    cols: usize,
    alpha: AlphaMatrix,
    /// Thermal time constant of the coupling, s.
    tau: f64,
    /// Whether coupling is applied at all (disabled for ablations).
    enabled: bool,
    /// Current ΔT state per cell, K.
    state: Vec<f64>,
    /// Nonzero coupling offsets `(Δrow, Δcol, α)` excluding the self offset,
    /// precomputed from the α matrix for the batched update. Sorted
    /// *descending* by offset: the offset-major axpy then accumulates each
    /// destination's contributions in ascending-source order, i.e. in the
    /// exact order a source-major scatter (or the gather loop, per
    /// destination) adds them.
    support: Vec<(isize, isize, f64)>,
    /// Scratch buffer holding the previous state during an update, reused
    /// across sub-steps so updates never allocate.
    scratch: Vec<f64>,
    /// Reused buffer of clamped per-source self-heating rises for the
    /// batched update (exactly `0.0` where a source contributes nothing).
    rise: Vec<f64>,
    /// Reused per-row `[lo, hi)` nonzero column span of `rise`. Crosstalk
    /// is local, so most rows are hot only near the biased lines; clipping
    /// the accumulation to the span skips adds of `α · 0.0` terms, which
    /// are bit-neutral (the accumulator is never `-0.0` — see
    /// [`CrosstalkHub::update_batched`]).
    span: Vec<(u32, u32)>,
}

/// Two hubs are equal when their coupling physics and state agree; the
/// derived `support` table and the `scratch`/`rise` buffers are excluded.
impl PartialEq for CrosstalkHub {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.alpha == other.alpha
            && self.tau == other.tau
            && self.enabled == other.enabled
            && self.state == other.state
    }
}

impl CrosstalkHub {
    /// Creates a hub from an extracted α matrix.
    ///
    /// `rows`/`cols` are the dimensions of the *simulated* array, which may
    /// differ from the extraction array; coupling beyond the extracted
    /// offsets is treated as zero.
    pub fn new(rows: usize, cols: usize, alpha: AlphaMatrix, tau: Seconds) -> Self {
        assert!(rows > 0 && cols > 0, "array must be non-empty");
        assert!(
            tau.0 >= 0.0 && tau.0.is_finite(),
            "tau must be non-negative"
        );
        let (selected_row, selected_col) = alpha.selected();
        let mut support: Vec<(isize, isize, f64)> = alpha
            .iter()
            .filter(|&(r, c, a)| (r, c) != (selected_row, selected_col) && a != 0.0)
            .map(|(r, c, a)| {
                (
                    r as isize - selected_row as isize,
                    c as isize - selected_col as isize,
                    a,
                )
            })
            .collect();
        // Descending offset order — see the field's invariant note.
        support.sort_by_key(|&(d_row, d_col, _)| std::cmp::Reverse((d_row, d_col)));
        CrosstalkHub {
            rows,
            cols,
            alpha,
            tau: tau.0,
            enabled: true,
            state: vec![0.0; rows * cols],
            support,
            scratch: vec![0.0; rows * cols],
            rise: vec![0.0; rows * cols],
            span: vec![(0, 0); rows],
        }
    }

    /// Creates a hub with a synthetic two-ring coupling profile — convenient
    /// for unit tests and quick experiments that do not want to run the field
    /// solver. `nearest` applies to the four in-line neighbours, `diagonal` to
    /// the four diagonal neighbours, and `second` to the cells two lines away.
    pub fn uniform(
        rows: usize,
        cols: usize,
        nearest: f64,
        diagonal: f64,
        second: f64,
        tau: Seconds,
    ) -> Self {
        // Build a 5×5 synthetic alpha map with the selected cell at (2, 2).
        let mut values = vec![0.0; 25];
        for r in 0..5usize {
            for c in 0..5usize {
                let dr = r.abs_diff(2);
                let dc = c.abs_diff(2);
                values[r * 5 + c] = match (dr, dc) {
                    (0, 0) => 1.0,
                    (0, 1) | (1, 0) => nearest,
                    (1, 1) => diagonal,
                    (0, 2) | (2, 0) => second,
                    _ => second * 0.5,
                };
            }
        }
        let alpha = AlphaMatrix::from_values(5, 5, (2, 2), values);
        CrosstalkHub::new(rows, cols, alpha, tau)
    }

    /// The canonical synthetic two-ring profile used by scenarios and
    /// campaigns: in-line nearest neighbours couple at `nearest`, diagonal
    /// neighbours at half and the second ring at a quarter of it (close to
    /// the ratios the field solver extracts for 50 nm spacing).
    pub fn two_ring(rows: usize, cols: usize, nearest: f64, tau: Seconds) -> Self {
        CrosstalkHub::uniform(rows, cols, nearest, 0.5 * nearest, 0.25 * nearest, tau)
    }

    /// A hub with coupling switched off (ablation baseline).
    pub fn disabled(rows: usize, cols: usize) -> Self {
        let mut hub = CrosstalkHub::uniform(rows, cols, 0.0, 0.0, 0.0, Seconds(0.0));
        hub.enabled = false;
        hub
    }

    /// Returns `true` when coupling is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Disables or re-enables coupling (used by the hub ablation experiment).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.state.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Thermal time constant.
    pub fn tau(&self) -> Seconds {
        Seconds(self.tau)
    }

    /// The α matrix used for the offset lookup.
    pub fn alpha(&self) -> &AlphaMatrix {
        &self.alpha
    }

    /// Number of rows of the simulated array.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the simulated array.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Current crosstalk temperature increase of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn delta(&self, row: usize, col: usize) -> Kelvin {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        Kelvin(self.state[row * self.cols + col])
    }

    /// All current ΔT values, row-major.
    pub fn deltas(&self) -> &[f64] {
        &self.state
    }

    /// Resets the thermal state to zero (array fully cooled down).
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Steady-state target ΔT for cell `(row, col)` given exported filament
    /// temperatures (row-major, length `rows·cols`) and the ambient
    /// temperature.
    fn target(
        &self,
        row: usize,
        col: usize,
        temperatures: &[f64],
        ambient: f64,
        previous_state: &[f64],
    ) -> f64 {
        let mut sum = 0.0;
        for src_row in 0..self.rows {
            for src_col in 0..self.cols {
                if src_row == row && src_col == col {
                    continue;
                }
                // Contribution of a source cell is its *self-heating* rise:
                // the exported filament temperature minus the crosstalk ΔT
                // this hub itself delivered to that cell. Using the total
                // temperature would double-count coupled heat and create a
                // positive feedback loop (the linear heat equation
                // superposes the responses to each cell's own dissipation).
                let src_idx = src_row * self.cols + src_col;
                let rise = temperatures[src_idx] - ambient - previous_state[src_idx];
                if rise <= 0.0 {
                    continue;
                }
                let alpha = self.alpha.alpha_by_offset(
                    row as isize - src_row as isize,
                    col as isize - src_col as isize,
                );
                sum += alpha * rise;
            }
        }
        sum
    }

    /// Advances the hub by `dt`, given the filament temperatures exported by
    /// every cell (row-major) and the ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics if `temperatures.len() != rows·cols` or `dt` is negative.
    pub fn update(&mut self, temperatures: &[f64], ambient: Kelvin, dt: Seconds) {
        assert_eq!(
            temperatures.len(),
            self.rows * self.cols,
            "temperature vector length mismatch"
        );
        assert!(dt.0 >= 0.0, "dt must be non-negative");
        if !self.enabled {
            return;
        }
        let blend = self.blend(dt);
        // Targets are computed from a snapshot of the state so the update is
        // independent of cell iteration order; the snapshot lives in the
        // reused scratch buffer, so no sub-step allocates.
        std::mem::swap(&mut self.state, &mut self.scratch);
        for row in 0..self.rows {
            for col in 0..self.cols {
                let idx = row * self.cols + col;
                let target = self.target(row, col, temperatures, ambient.0, &self.scratch);
                self.state[idx] = self.scratch[idx] + (target - self.scratch[idx]) * blend;
            }
        }
    }

    /// Exact first-order-lag blend factor for a piecewise-constant target.
    fn blend(&self, dt: Seconds) -> f64 {
        if self.tau == 0.0 {
            1.0
        } else {
            1.0 - (-dt.0 / self.tau).exp()
        }
    }

    /// Advances the hub by `dt` like [`CrosstalkHub::update`], but computes
    /// the targets by accumulating each coupling *offset*'s contribution as
    /// one strided axpy (`state[dst..] += α · rise[src..]`, row by row)
    /// instead of gathering over every source per destination.
    ///
    /// For the compact synthetic/extracted α profiles a hammer campaign uses
    /// (a handful of coupled rings), this turns the per-sub-step cost from
    /// `O((rows·cols)²)` into `O(rows·cols · support)` — the hot-path win of
    /// the batched engine on large arrays — and the offset-major loop walks
    /// both buffers contiguously with the boundary clipping hoisted out of
    /// the inner loop. When the support is as dense as the array itself the
    /// method falls back to the gather loop.
    ///
    /// The descending offset order of `support` makes every destination
    /// accumulate its contributions in ascending-source order, so the sums
    /// are **bit-identical** to a per-source scatter (a test pins this);
    /// only the gather loop's per-destination accumulation is merely
    /// float-equal.
    ///
    /// # Panics
    ///
    /// Panics if `temperatures.len() != rows·cols` or `dt` is negative.
    pub fn update_batched(&mut self, temperatures: &[f64], ambient: Kelvin, dt: Seconds) {
        assert_eq!(
            temperatures.len(),
            self.rows * self.cols,
            "temperature vector length mismatch"
        );
        assert!(dt.0 >= 0.0, "dt must be non-negative");
        if !self.enabled {
            return;
        }
        if self.support.len() >= self.rows * self.cols {
            // Dense coupling (e.g. a full FEM extraction): scattering would
            // cost more than gathering.
            self.update(temperatures, ambient, dt);
            return;
        }
        let blend = self.blend(dt);
        let level = rram_jart::simd::active();
        std::mem::swap(&mut self.state, &mut self.scratch);
        // Clamped self-heating rises, computed once per source. Storing an
        // exact `0.0` where a source contributes nothing keeps the axpy
        // bit-neutral there: the accumulator is never `-0.0` (it starts at
        // `+0.0` and partial sums of finite terms that cancel round to
        // `+0.0`), so adding `α·0.0` preserves every bit.
        rram_jart::simd::positive_rise(
            level,
            ambient.0,
            temperatures,
            &self.scratch,
            &mut self.rise,
        );
        // Per-row nonzero span of the rises. Crosstalk is local, so away
        // from the biased lines whole rows are exactly `0.0`; clipping the
        // accumulation below to the span only skips `α · 0.0` terms, which
        // are bit-neutral on an accumulator that is never `-0.0` (it
        // starts at `+0.0`, exact cancellations round to `+0.0`, and
        // `x + ±0.0 == x` for every such `x`).
        for (row, span) in self.span.iter_mut().enumerate() {
            let rise_row = &self.rise[row * self.cols..(row + 1) * self.cols];
            let lo = rise_row.iter().position(|&r| r != 0.0);
            *span = match lo {
                None => (0, 0),
                Some(lo) => {
                    let hi = rise_row.iter().rposition(|&r| r != 0.0).unwrap_or(lo) + 1;
                    (lo as u32, hi as u32)
                }
            };
        }
        // `state` doubles as the target accumulator, processed one
        // destination row at a time: each row is zeroed, accumulated over
        // every offset, then blended in place while still cache-hot. This
        // keeps the per-update memory traffic at a handful of array passes
        // instead of one full `state` pass per support offset (the offsets
        // of one destination row read the same few source rows over and
        // over, so they stay resident). Per destination the contributions
        // still arrive in descending-offset order — identical to the
        // offset-major sweep — so the sums carry the same bits.
        let (rows, cols) = (self.rows as isize, self.cols as isize);
        for dst_row in 0..rows {
            let dst_base = (dst_row * cols) as usize;
            let state_row = &mut self.state[dst_base..dst_base + self.cols];
            state_row.iter_mut().for_each(|v| *v = 0.0);
            // The support is sorted descending by `(d_row, d_col)`, so the
            // offsets sharing one source row form a contiguous run; each
            // run becomes one fused stencil pass over that source row (the
            // per-destination term order — `d_row` descending, then
            // `d_col` descending — is exactly the stored order, so the
            // fusion carries the same bits as per-offset axpy sweeps).
            let mut k = 0;
            while k < self.support.len() {
                let d_row = self.support[k].0;
                let mut end = k + 1;
                while end < self.support.len() && self.support[end].0 == d_row {
                    end += 1;
                }
                let run = &self.support[k..end];
                k = end;
                let src_row = dst_row - d_row;
                if src_row < 0 || src_row >= rows {
                    continue;
                }
                let (nz_lo, nz_hi) = self.span[src_row as usize];
                if nz_lo == nz_hi {
                    // The whole source row is cold; every term is `0.0`.
                    continue;
                }
                // Destination columns that can receive a nonzero term:
                // `dst = src + d_col` over the span and the run's offsets.
                let min_c = run.iter().map(|&(_, c, _)| c).min().unwrap_or(0);
                let max_c = run.iter().map(|&(_, c, _)| c).max().unwrap_or(0);
                let dst_lo = (nz_lo as isize + min_c).clamp(0, cols) as usize;
                let dst_hi = (nz_hi as isize + max_c).clamp(dst_lo as isize, cols) as usize;
                let src_base = (src_row * cols) as usize;
                let rise = &self.rise[src_base..src_base + self.cols];
                let mut shifts = [(0isize, 0.0f64); 8];
                if run.len() <= shifts.len() {
                    for (slot, &(_, d_col, alpha)) in shifts.iter_mut().zip(run) {
                        *slot = (d_col, alpha);
                    }
                    rram_jart::simd::stencil_accumulate_range(
                        level,
                        &shifts[..run.len()],
                        rise,
                        state_row,
                        dst_lo,
                        dst_hi,
                    );
                } else {
                    // A denser kernel than the stack buffer holds: fall
                    // back to one clipped axpy pass per offset.
                    for &(_, d_col, alpha) in run {
                        let col_lo = (-d_col).max(nz_lo as isize);
                        let col_hi = (cols - d_col).min(nz_hi as isize);
                        if col_lo >= col_hi {
                            continue;
                        }
                        let width = (col_hi - col_lo) as usize;
                        let src = &rise[col_lo as usize..col_lo as usize + width];
                        let dst_off = (col_lo + d_col) as usize;
                        let row = &mut state_row[dst_off..dst_off + width];
                        rram_jart::simd::axpy(level, alpha, src, row);
                    }
                }
            }
            let scratch_row = &self.scratch[dst_base..dst_base + self.cols];
            rram_jart::simd::blend_into(level, blend, scratch_row, state_row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_center(rows: usize, cols: usize, hot: f64) -> Vec<f64> {
        let mut t = vec![300.0; rows * cols];
        t[(rows / 2) * cols + cols / 2] = hot;
        t
    }

    #[test]
    fn static_hub_reaches_target_immediately() {
        let mut hub = CrosstalkHub::uniform(5, 5, 0.1, 0.05, 0.02, Seconds(0.0));
        hub.update(&hot_center(5, 5, 900.0), Kelvin(300.0), Seconds(1e-9));
        // Nearest neighbour of the hot centre: α = 0.1, rise = 600 K → 60 K.
        assert!((hub.delta(2, 1).0 - 60.0).abs() < 1e-9);
        assert!((hub.delta(1, 1).0 - 30.0).abs() < 1e-9);
        assert!((hub.delta(2, 0).0 - 12.0).abs() < 1e-9);
    }

    #[test]
    fn lagged_hub_converges_exponentially() {
        let mut hub = CrosstalkHub::uniform(3, 3, 0.1, 0.05, 0.02, Seconds(100e-9));
        let temps = hot_center(3, 3, 900.0);
        hub.update(&temps, Kelvin(300.0), Seconds(100e-9));
        let after_one_tau = hub.delta(1, 0).0;
        let target = 60.0;
        assert!((after_one_tau - target * (1.0 - (-1.0f64).exp())).abs() < 1e-6);
        // Keep updating; it should approach the target.
        for _ in 0..50 {
            hub.update(&temps, Kelvin(300.0), Seconds(100e-9));
        }
        assert!((hub.delta(1, 0).0 - target).abs() < 1e-3);
    }

    #[test]
    fn cooling_decays_back_to_zero() {
        let mut hub = CrosstalkHub::uniform(3, 3, 0.1, 0.05, 0.02, Seconds(50e-9));
        let temps = hot_center(3, 3, 900.0);
        hub.update(&temps, Kelvin(300.0), Seconds(1e-6));
        assert!(hub.delta(1, 0).0 > 50.0);
        let ambient_only = vec![300.0; 9];
        hub.update(&ambient_only, Kelvin(300.0), Seconds(1e-6));
        assert!(hub.delta(1, 0).0 < 1.0);
    }

    #[test]
    fn disabled_hub_stays_cold() {
        let mut hub = CrosstalkHub::disabled(3, 3);
        hub.update(&hot_center(3, 3, 1000.0), Kelvin(300.0), Seconds(1e-6));
        assert_eq!(hub.delta(1, 0).0, 0.0);
        assert!(!hub.is_enabled());
    }

    #[test]
    fn disabling_clears_state() {
        let mut hub = CrosstalkHub::uniform(3, 3, 0.1, 0.05, 0.02, Seconds(0.0));
        hub.update(&hot_center(3, 3, 900.0), Kelvin(300.0), Seconds(1e-9));
        assert!(hub.delta(1, 0).0 > 0.0);
        hub.set_enabled(false);
        assert_eq!(hub.delta(1, 0).0, 0.0);
    }

    #[test]
    fn colder_than_ambient_sources_are_ignored() {
        let mut hub = CrosstalkHub::uniform(3, 3, 0.1, 0.05, 0.02, Seconds(0.0));
        let mut temps = vec![300.0; 9];
        temps[0] = 250.0;
        hub.update(&temps, Kelvin(300.0), Seconds(1e-9));
        assert_eq!(hub.delta(1, 1).0, 0.0);
    }

    #[test]
    fn reset_clears_the_state() {
        let mut hub = CrosstalkHub::uniform(3, 3, 0.1, 0.05, 0.02, Seconds(0.0));
        hub.update(&hot_center(3, 3, 900.0), Kelvin(300.0), Seconds(1e-9));
        hub.reset();
        assert!(hub.deltas().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn superposition_of_two_aggressors() {
        let mut hub = CrosstalkHub::uniform(5, 5, 0.1, 0.05, 0.02, Seconds(0.0));
        let mut temps = vec![300.0; 25];
        // Two aggressors flanking the victim at (2,2).
        temps[2 * 5 + 1] = 900.0;
        temps[2 * 5 + 3] = 900.0;
        hub.update(&temps, Kelvin(300.0), Seconds(1e-9));
        // Victim receives 0.1·600 from each side.
        assert!((hub.delta(2, 2).0 - 120.0).abs() < 1e-9);
    }

    #[test]
    fn batched_update_matches_gather_update() {
        let mut gather = CrosstalkHub::uniform(6, 7, 0.1, 0.05, 0.02, Seconds(40e-9));
        let mut scatter = gather.clone();
        // An uneven temperature field, including sub-ambient cells.
        let temps: Vec<f64> = (0..42).map(|i| 280.0 + (i as f64 * 37.0) % 650.0).collect();
        for _ in 0..5 {
            gather.update(&temps, Kelvin(300.0), Seconds(20e-9));
            scatter.update_batched(&temps, Kelvin(300.0), Seconds(20e-9));
        }
        for (a, b) in gather.deltas().iter().zip(scatter.deltas()) {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn axpy_update_is_bit_identical_to_a_source_major_scatter() {
        // The offset-major axpy must reproduce the straightforward
        // source-major scatter (each source pushed over the support, sources
        // ascending) bit for bit — this is what keeps batched campaign
        // results stable across the loop restructure. Exercised on an array
        // larger than the support and on one narrower than the coupling
        // reach (every offset clipped).
        for (rows, cols) in [(6, 7), (2, 2)] {
            let mut hub = CrosstalkHub::uniform(rows, cols, 0.1, 0.05, 0.02, Seconds(40e-9));
            let mut expected_state: Vec<f64> = hub.state.clone();
            let temps: Vec<f64> = (0..rows * cols)
                .map(|i| 280.0 + (i as f64 * 37.0) % 650.0)
                .collect();
            for _ in 0..5 {
                // Reference: the source-major scatter over the same support.
                let previous = expected_state.clone();
                let mut target = vec![0.0; rows * cols];
                for src_row in 0..rows {
                    for src_col in 0..cols {
                        let src_idx = src_row * cols + src_col;
                        let rise = temps[src_idx] - 300.0 - previous[src_idx];
                        if rise <= 0.0 {
                            continue;
                        }
                        for &(d_row, d_col, alpha) in &hub.support {
                            let row = src_row as isize + d_row;
                            let col = src_col as isize + d_col;
                            if row < 0 || col < 0 || row >= rows as isize || col >= cols as isize {
                                continue;
                            }
                            target[row as usize * cols + col as usize] += alpha * rise;
                        }
                    }
                }
                let blend = hub.blend(Seconds(20e-9));
                for idx in 0..rows * cols {
                    expected_state[idx] = previous[idx] + (target[idx] - previous[idx]) * blend;
                }

                hub.update_batched(&temps, Kelvin(300.0), Seconds(20e-9));
                for (idx, (a, b)) in hub.deltas().iter().zip(&expected_state).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "cell {idx}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn dense_support_falls_back_to_gather() {
        // A full-array α matrix (every offset nonzero) on a smaller simulated
        // array: the scatter support is denser than the array, so the batched
        // path must fall back to the exact gather loop.
        let alpha = AlphaMatrix::from_values(3, 3, (1, 1), vec![0.1; 9]);
        let mut hub = CrosstalkHub::new(2, 2, alpha.clone(), Seconds(0.0));
        let mut reference = CrosstalkHub::new(2, 2, alpha, Seconds(0.0));
        let temps = [900.0, 300.0, 300.0, 300.0];
        hub.update_batched(&temps, Kelvin(300.0), Seconds(1e-9));
        reference.update(&temps, Kelvin(300.0), Seconds(1e-9));
        assert_eq!(hub.deltas(), reference.deltas());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_temperature_length_panics() {
        let mut hub = CrosstalkHub::uniform(3, 3, 0.1, 0.05, 0.02, Seconds(0.0));
        hub.update(&[300.0; 4], Kelvin(300.0), Seconds(1e-9));
    }
}
