//! Write/bias schemes of a passive crossbar.
//!
//! A passive crossbar is addressed by driving its word lines (rows) and bit
//! lines (columns). To write the selected cell without disturbing the rest of
//! the array, the unselected lines are biased at intermediate voltages. The
//! paper uses the V/2 scheme: the selected word line carries the full write
//! voltage, the selected bit line is grounded, and every unselected line sits
//! at V/2, so unselected cells on the selected row/column see V/2 and all
//! other cells see 0 V. Those V/2 cells are exactly the potential NeuroHammer
//! victims (the "blue cells" of Fig. 1).

use serde::{Deserialize, Serialize};

use rram_units::Volts;

/// Position of a cell in the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellAddress {
    /// Word-line (row) index.
    pub row: usize,
    /// Bit-line (column) index.
    pub col: usize,
}

impl CellAddress {
    /// Convenience constructor.
    pub fn new(row: usize, col: usize) -> Self {
        CellAddress { row, col }
    }

    /// Chebyshev (chessboard) distance to another cell — 1 for the eight
    /// surrounding neighbours.
    pub fn chebyshev_distance(&self, other: CellAddress) -> usize {
        let dr = self.row.abs_diff(other.row);
        let dc = self.col.abs_diff(other.col);
        dr.max(dc)
    }

    /// Returns `true` when the two cells share a word line or a bit line.
    pub fn shares_line_with(&self, other: CellAddress) -> bool {
        self.row == other.row || self.col == other.col
    }
}

/// Bias scheme applied while writing a selected cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteScheme {
    /// Selected word line at V, selected bit line at 0, all other lines at
    /// V/2. Half-selected cells see V/2.
    HalfVoltage,
    /// Selected word line at V, selected bit line at 0, unselected word lines
    /// at V/3 and unselected bit lines at 2V/3. Half-selected cells see V/3
    /// and fully unselected cells see ±V/3.
    ThirdVoltage,
    /// Selected word line at V, every other line grounded. Half-selected
    /// cells see the full V (worst case for disturbs, used as an upper-bound
    /// reference).
    GroundedUnselected,
}

/// Line voltages produced by a scheme for one write access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineBias {
    /// Word-line (row) voltages.
    pub word_lines: Vec<Volts>,
    /// Bit-line (column) voltages.
    pub bit_lines: Vec<Volts>,
}

impl LineBias {
    /// Voltage across cell `(row, col)`: word-line voltage minus bit-line
    /// voltage.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn cell_voltage(&self, address: CellAddress) -> Volts {
        self.word_lines[address.row] - self.bit_lines[address.col]
    }
}

impl WriteScheme {
    /// All schemes, in the order campaign reports use.
    pub const ALL: [WriteScheme; 3] = [
        WriteScheme::HalfVoltage,
        WriteScheme::ThirdVoltage,
        WriteScheme::GroundedUnselected,
    ];

    /// Short label used in campaign JSON and report tables
    /// ("half" / "third" / "grounded").
    pub fn label(&self) -> &'static str {
        match self {
            WriteScheme::HalfVoltage => "half",
            WriteScheme::ThirdVoltage => "third",
            WriteScheme::GroundedUnselected => "grounded",
        }
    }

    /// Position of this scheme in [`WriteScheme::ALL`] (the numeric axis
    /// coordinate campaign reports use).
    pub fn index(&self) -> usize {
        WriteScheme::ALL
            .iter()
            .position(|s| s == self)
            .expect("every scheme is listed in ALL")
    }

    /// Computes the line biases for writing `selected` with amplitude
    /// `v_write` in an array of `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if the selected cell lies outside the array.
    pub fn line_bias(
        &self,
        rows: usize,
        cols: usize,
        selected: CellAddress,
        v_write: Volts,
    ) -> LineBias {
        assert!(
            selected.row < rows && selected.col < cols,
            "selected cell outside the array"
        );
        let v = v_write.0;
        let (unselected_wl, unselected_bl) = self.unselected_levels(v_write);
        let word_lines = (0..rows)
            .map(|r| {
                if r == selected.row {
                    Volts(v)
                } else {
                    unselected_wl
                }
            })
            .collect();
        let bit_lines = (0..cols)
            .map(|c| {
                if c == selected.col {
                    Volts(0.0)
                } else {
                    unselected_bl
                }
            })
            .collect();
        LineBias {
            word_lines,
            bit_lines,
        }
    }

    /// The bias levels of unselected (word, bit) lines for a write at
    /// `v_write` — the two degrees of freedom that distinguish the schemes.
    /// [`WriteScheme::line_bias`] expands these into full per-line vectors;
    /// the batched engine uses them directly to build the two distinct
    /// voltage row patterns a write access produces.
    pub fn unselected_levels(&self, v_write: Volts) -> (Volts, Volts) {
        let v = v_write.0;
        match self {
            WriteScheme::HalfVoltage => (Volts(v / 2.0), Volts(v / 2.0)),
            WriteScheme::ThirdVoltage => (Volts(v / 3.0), Volts(2.0 * v / 3.0)),
            WriteScheme::GroundedUnselected => (Volts(0.0), Volts(0.0)),
        }
    }

    /// The voltage a half-selected cell (sharing exactly one line with the
    /// selected cell) experiences under this scheme.
    pub fn half_select_voltage(&self, v_write: Volts) -> Volts {
        match self {
            WriteScheme::HalfVoltage => Volts(v_write.0 / 2.0),
            WriteScheme::ThirdVoltage => Volts(v_write.0 / 3.0),
            WriteScheme::GroundedUnselected => v_write,
        }
    }
}

/// Parses a scheme label as written in campaign JSON ("half", "third" or
/// "grounded").
impl std::str::FromStr for WriteScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WriteScheme::ALL
            .iter()
            .find(|scheme| scheme.label() == s)
            .copied()
            .ok_or_else(|| format!("unknown write scheme {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_parse_round_trip() {
        for (i, scheme) in WriteScheme::ALL.iter().enumerate() {
            assert_eq!(scheme.index(), i);
            let parsed: WriteScheme = scheme.label().parse().unwrap();
            assert_eq!(parsed, *scheme);
        }
        assert!("quarter".parse::<WriteScheme>().is_err());
    }

    #[test]
    fn half_voltage_scheme_biases() {
        let bias = WriteScheme::HalfVoltage.line_bias(5, 5, CellAddress::new(2, 2), Volts(1.05));
        // Selected cell sees the full voltage.
        assert!((bias.cell_voltage(CellAddress::new(2, 2)).0 - 1.05).abs() < 1e-12);
        // Cells sharing the word line or bit line see V/2.
        assert!((bias.cell_voltage(CellAddress::new(2, 0)).0 - 0.525).abs() < 1e-12);
        assert!((bias.cell_voltage(CellAddress::new(4, 2)).0 - 0.525).abs() < 1e-12);
        // Cells sharing neither line see 0.
        assert!(bias.cell_voltage(CellAddress::new(0, 0)).0.abs() < 1e-12);
    }

    #[test]
    fn third_voltage_scheme_biases() {
        let bias = WriteScheme::ThirdVoltage.line_bias(3, 3, CellAddress::new(1, 1), Volts(0.9));
        assert!((bias.cell_voltage(CellAddress::new(1, 1)).0 - 0.9).abs() < 1e-12);
        // Half-selected cells: V − 2V/3 = V/3 and V/3 − 0 = V/3.
        assert!((bias.cell_voltage(CellAddress::new(1, 0)).0 - 0.3).abs() < 1e-12);
        assert!((bias.cell_voltage(CellAddress::new(0, 1)).0 - 0.3).abs() < 1e-12);
        // Fully unselected cells: V/3 − 2V/3 = −V/3.
        assert!((bias.cell_voltage(CellAddress::new(0, 0)).0 + 0.3).abs() < 1e-12);
    }

    #[test]
    fn grounded_scheme_exposes_full_voltage() {
        let bias =
            WriteScheme::GroundedUnselected.line_bias(3, 3, CellAddress::new(0, 0), Volts(1.0));
        assert!((bias.cell_voltage(CellAddress::new(0, 2)).0 - 1.0).abs() < 1e-12);
        assert!(bias.cell_voltage(CellAddress::new(2, 2)).0.abs() < 1e-12);
    }

    #[test]
    fn half_select_voltage_matches_scheme() {
        assert!(
            (WriteScheme::HalfVoltage.half_select_voltage(Volts(1.05)).0 - 0.525).abs() < 1e-12
        );
        assert!(
            (WriteScheme::ThirdVoltage.half_select_voltage(Volts(1.05)).0 - 0.35).abs() < 1e-12
        );
        assert!(
            (WriteScheme::GroundedUnselected
                .half_select_voltage(Volts(1.05))
                .0
                - 1.05)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn unselected_levels_are_the_line_bias_levels_bitwise() {
        // The batched engine builds its voltage patterns from the raw
        // levels; they must be the very same floats line_bias installs.
        for scheme in WriteScheme::ALL {
            let v = Volts(1.05);
            let (wl, bl) = scheme.unselected_levels(v);
            let bias = scheme.line_bias(3, 3, CellAddress::new(0, 0), v);
            assert_eq!(bias.word_lines[1].0.to_bits(), wl.0.to_bits());
            assert_eq!(bias.bit_lines[1].0.to_bits(), bl.0.to_bits());
        }
    }

    #[test]
    fn cell_address_helpers() {
        let a = CellAddress::new(2, 2);
        assert_eq!(a.chebyshev_distance(CellAddress::new(3, 1)), 1);
        assert_eq!(a.chebyshev_distance(CellAddress::new(2, 2)), 0);
        assert_eq!(a.chebyshev_distance(CellAddress::new(0, 4)), 2);
        assert!(a.shares_line_with(CellAddress::new(2, 4)));
        assert!(a.shares_line_with(CellAddress::new(0, 2)));
        assert!(!a.shares_line_with(CellAddress::new(0, 0)));
    }

    #[test]
    #[should_panic(expected = "outside the array")]
    fn out_of_range_selection_panics() {
        WriteScheme::HalfVoltage.line_bias(2, 2, CellAddress::new(5, 0), Volts(1.0));
    }
}
