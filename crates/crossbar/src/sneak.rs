//! Sneak-path analysis of the passive crossbar.
//!
//! In a passive (selector-free) crossbar, reading one cell also drives
//! current through unselected cells; the V/2 biasing the paper uses while
//! hammering exists precisely "to minimise the sneak-path currents". This
//! module quantifies sneak paths for a given array state by solving the
//! resistive network (word/bit-line segments + per-cell static read
//! resistances) with the MNA engine.

use serde::{Deserialize, Serialize};

use crate::array::CrossbarArray;
use crate::detailed::WiringParasitics;
use crate::scheme::CellAddress;
use rram_circuit::{solve_dc, CircuitError, Netlist, NodeId, Waveform};
use rram_units::{Amps, Volts};

/// Bias applied to the unselected lines during a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadBias {
    /// Unselected word and bit lines are grounded (suppresses sneak paths at
    /// the cost of read power).
    GroundedUnselected,
    /// Unselected word lines are tied to the read voltage and unselected bit
    /// lines to ground — a common low-power scheme with worse margins.
    HalfBiased,
}

/// Result of a single-cell read analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadAnalysis {
    /// The cell that was read.
    pub cell: CellAddress,
    /// Current delivered by the selected bit line (what a sense amplifier
    /// integrates), A.
    pub sensed_current: Amps,
    /// Current through the selected cell itself, A.
    pub cell_current: Amps,
    /// Fraction of the sensed current carried by the selected cell
    /// (1.0 = no sneak current at all).
    pub selectivity: f64,
}

/// Read-margin report over the whole array for a given state pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadMarginReport {
    /// Lowest sensed current over all cells that store LRS, A.
    pub min_lrs_current: Amps,
    /// Highest sensed current over all cells that store HRS, A.
    pub max_hrs_current: Amps,
    /// `min_lrs_current / max_hrs_current`; values ≤ 1 mean the states are
    /// indistinguishable for at least one cell.
    pub margin: f64,
}

fn read_netlist(
    array: &CrossbarArray,
    parasitics: WiringParasitics,
    selected: CellAddress,
    v_read: Volts,
    bias: ReadBias,
) -> Netlist {
    let rows = array.rows();
    let cols = array.cols();
    let mut netlist = Netlist::new();

    for r in 0..rows {
        let driver = netlist.node(&format!("wl_drv_{r}"));
        let v = if r == selected.row {
            v_read.0
        } else {
            match bias {
                ReadBias::GroundedUnselected => 0.0,
                ReadBias::HalfBiased => v_read.0,
            }
        };
        netlist.add_voltage_source(driver, NodeId::GROUND, Waveform::Dc(v));
        let first = netlist.node(&format!("wl_{r}_0"));
        netlist.add_resistor(driver, first, parasitics.driver_resistance.0);
        for c in 1..cols {
            let prev = netlist.node(&format!("wl_{r}_{}", c - 1));
            let here = netlist.node(&format!("wl_{r}_{c}"));
            netlist.add_resistor(prev, here, parasitics.segment_resistance.0);
        }
    }
    for c in 0..cols {
        let driver = netlist.node(&format!("bl_drv_{c}"));
        // All bit lines are held at 0 V; the selected one's source current is
        // what the sense amplifier sees.
        netlist.add_voltage_source(driver, NodeId::GROUND, Waveform::Dc(0.0));
        let first = netlist.node(&format!("bl_0_{c}"));
        netlist.add_resistor(driver, first, parasitics.driver_resistance.0);
        for r in 1..rows {
            let prev = netlist.node(&format!("bl_{}_{c}", r - 1));
            let here = netlist.node(&format!("bl_{r}_{c}"));
            netlist.add_resistor(prev, here, parasitics.segment_resistance.0);
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let wl = netlist.node(&format!("wl_{r}_{c}"));
            let bl = netlist.node(&format!("bl_{r}_{c}"));
            let resistance = array
                .read_resistance(CellAddress::new(r, c), v_read)
                .0
                .max(1.0);
            netlist.add_resistor(wl, bl, resistance);
        }
    }
    netlist
}

/// Analyses a read of `selected` for the given array state.
///
/// # Errors
///
/// Propagates [`CircuitError`] if the network solve fails.
pub fn analyze_read(
    array: &CrossbarArray,
    parasitics: WiringParasitics,
    selected: CellAddress,
    v_read: Volts,
    bias: ReadBias,
) -> Result<ReadAnalysis, CircuitError> {
    let mut netlist = read_netlist(array, parasitics, selected, v_read, bias);
    // Resolve the crosspoint nodes of the selected cell before solving
    // (the nodes already exist, so this does not change the netlist).
    let wl_node = netlist.node(&format!("wl_{}_{}", selected.row, selected.col));
    let bl_node = netlist.node(&format!("bl_{}_{}", selected.row, selected.col));
    let solution = solve_dc(&netlist)?;

    // The bit-line drivers were added after the word-line drivers, in column
    // order, so the selected bit line's source index is rows + selected.col.
    // Current entering the driver's positive terminal (i.e. collected from
    // the array) is reported as positive branch current.
    let sensed = solution.source_current(array.rows() + selected.col);

    // Current through the selected cell: voltage across its read resistance.
    let v_cell = solution.voltage(wl_node) - solution.voltage(bl_node);
    let r_cell = array.read_resistance(selected, v_read).0;
    let cell_current = v_cell / r_cell;

    let selectivity = if sensed.abs() < 1e-18 {
        0.0
    } else {
        (cell_current / sensed).clamp(0.0, 1.0)
    };
    Ok(ReadAnalysis {
        cell: selected,
        sensed_current: Amps(sensed),
        cell_current: Amps(cell_current),
        selectivity,
    })
}

/// Computes the worst-case read margin over the whole array.
///
/// # Errors
///
/// Propagates [`CircuitError`] if any network solve fails. Returns an error
/// margin of `f64::INFINITY` when the array stores only one of the two states.
pub fn read_margin(
    array: &CrossbarArray,
    parasitics: WiringParasitics,
    v_read: Volts,
    bias: ReadBias,
) -> Result<ReadMarginReport, CircuitError> {
    let mut min_lrs = f64::INFINITY;
    let mut max_hrs: f64 = 0.0;
    for (address, cell) in array.iter() {
        let analysis = analyze_read(array, parasitics, address, v_read, bias)?;
        if cell.is_lrs() {
            min_lrs = min_lrs.min(analysis.sensed_current.0);
        } else {
            max_hrs = max_hrs.max(analysis.sensed_current.0);
        }
    }
    let margin = if max_hrs == 0.0 {
        f64::INFINITY
    } else {
        min_lrs / max_hrs
    };
    Ok(ReadMarginReport {
        min_lrs_current: Amps(min_lrs),
        max_hrs_current: Amps(max_hrs),
        margin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rram_jart::{DeviceParams, DigitalState};

    fn checkerboard(rows: usize, cols: usize) -> CrossbarArray {
        let mut array = CrossbarArray::new(rows, cols, DeviceParams::default());
        array.for_each_cell_mut(|address, mut cell| {
            if (address.row + address.col) % 2 == 0 {
                cell.force_state(DigitalState::Lrs);
            }
        });
        array
    }

    #[test]
    fn reading_an_lrs_cell_senses_more_current_than_hrs() {
        let array = checkerboard(3, 3);
        let lrs = analyze_read(
            &array,
            WiringParasitics::default(),
            CellAddress::new(0, 0),
            Volts(0.2),
            ReadBias::GroundedUnselected,
        )
        .unwrap();
        let hrs = analyze_read(
            &array,
            WiringParasitics::default(),
            CellAddress::new(0, 1),
            Volts(0.2),
            ReadBias::GroundedUnselected,
        )
        .unwrap();
        assert!(
            lrs.sensed_current.0 > 5.0 * hrs.sensed_current.0,
            "LRS {:?} vs HRS {:?}",
            lrs.sensed_current,
            hrs.sensed_current
        );
    }

    #[test]
    fn grounded_scheme_keeps_good_selectivity() {
        let array = checkerboard(3, 3);
        let analysis = analyze_read(
            &array,
            WiringParasitics::default(),
            CellAddress::new(1, 1),
            Volts(0.2),
            ReadBias::GroundedUnselected,
        )
        .unwrap();
        assert!(
            analysis.selectivity > 0.5,
            "selectivity {}",
            analysis.selectivity
        );
    }

    #[test]
    fn read_margin_distinguishes_states_in_small_array() {
        let array = checkerboard(3, 3);
        let report = read_margin(
            &array,
            WiringParasitics::default(),
            Volts(0.2),
            ReadBias::GroundedUnselected,
        )
        .unwrap();
        assert!(report.margin > 1.5, "margin = {}", report.margin);
        assert!(report.min_lrs_current.0 > report.max_hrs_current.0);
    }

    #[test]
    fn half_biased_read_has_worse_or_equal_margin() {
        let array = checkerboard(3, 3);
        let grounded = read_margin(
            &array,
            WiringParasitics::default(),
            Volts(0.2),
            ReadBias::GroundedUnselected,
        )
        .unwrap();
        let half = read_margin(
            &array,
            WiringParasitics::default(),
            Volts(0.2),
            ReadBias::HalfBiased,
        )
        .unwrap();
        assert!(half.margin <= grounded.margin * 1.5 + 1e-9);
    }

    #[test]
    fn all_hrs_array_reports_infinite_margin() {
        let array = CrossbarArray::new(2, 2, DeviceParams::default());
        let report = read_margin(
            &array,
            WiringParasitics::default(),
            Volts(0.2),
            ReadBias::GroundedUnselected,
        )
        .unwrap();
        assert!(report.margin.is_infinite());
    }
}
