//! Modified nodal analysis: DC operating point and transient simulation.
//!
//! The unknown vector contains the voltages of all non-ground nodes followed
//! by the branch currents of the independent voltage sources. Nonlinear
//! devices are handled with Newton–Raphson; capacitors use the backward-Euler
//! companion model in transient analysis and are open circuits in DC.

use std::error::Error;
use std::fmt;

use crate::dense::{DenseMatrix, LinearError};
use crate::netlist::{Element, Netlist, NodeId};

/// Errors produced by the analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The linear solve inside a Newton iteration failed.
    Linear(LinearError),
    /// Newton–Raphson did not converge.
    NewtonDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Largest voltage update of the last iteration.
        last_update: f64,
    },
    /// The requested transient configuration is invalid.
    InvalidTransient {
        /// Explanation of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Linear(e) => write!(f, "linear solve failed: {e}"),
            CircuitError::NewtonDiverged {
                iterations,
                last_update,
            } => write!(
                f,
                "newton iteration diverged after {iterations} iterations (last update {last_update:.3e} V)"
            ),
            CircuitError::InvalidTransient { reason } => {
                write!(f, "invalid transient configuration: {reason}")
            }
        }
    }
}

impl Error for CircuitError {}

impl From<LinearError> for CircuitError {
    fn from(e: LinearError) -> Self {
        CircuitError::Linear(e)
    }
}

/// Result of a DC or single-time-point solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    node_voltages: Vec<f64>,
    source_currents: Vec<f64>,
}

impl Solution {
    /// Voltage of a node (ground reads 0).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.node_voltages[node.0]
    }

    /// Branch current of the `k`-th voltage source (in the order they were
    /// added to the netlist). Positive current flows from the positive
    /// terminal through the source to the negative terminal.
    pub fn source_current(&self, k: usize) -> f64 {
        self.source_currents[k]
    }

    /// All node voltages, indexed by `NodeId`.
    pub fn node_voltages(&self) -> &[f64] {
        &self.node_voltages
    }
}

/// Options of the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Convergence tolerance on the largest voltage update, V.
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Largest allowed voltage update per iteration (damping), V.
    pub max_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            tolerance: 1e-9,
            max_iterations: 200,
            max_step: 0.5,
        }
    }
}

/// Transient analysis options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step, s.
    pub dt: f64,
    /// Stop time, s.
    pub t_stop: f64,
    /// Newton options used at every time point.
    pub newton: NewtonOptions,
}

/// Result of a transient analysis: waveforms sampled at every accepted step.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Sample times, s.
    pub times: Vec<f64>,
    /// Node voltages per sample; `voltages[k][node]`.
    pub voltages: Vec<Vec<f64>>,
    /// Voltage-source branch currents per sample.
    pub source_currents: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Waveform of a single node.
    pub fn node_waveform(&self, node: NodeId) -> Vec<f64> {
        self.voltages.iter().map(|v| v[node.0]).collect()
    }

    /// The last solution point.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty (zero-length transient).
    pub fn final_solution(&self) -> Solution {
        Solution {
            node_voltages: self.voltages.last().expect("non-empty transient").clone(),
            source_currents: self
                .source_currents
                .last()
                .expect("non-empty transient")
                .clone(),
        }
    }
}

/// State handed to the assembly routine.
struct AssemblyContext<'a> {
    /// Candidate node voltages (length = node count).
    candidate: &'a [f64],
    /// Previous-step node voltages for capacitor companions (None in DC).
    previous: Option<&'a [f64]>,
    /// Time step (None in DC).
    dt: Option<f64>,
    /// Source evaluation time.
    time: f64,
}

fn assemble(netlist: &Netlist, ctx: &AssemblyContext<'_>) -> (DenseMatrix, Vec<f64>) {
    let n_nodes = netlist.node_count();
    let n_unknown_nodes = n_nodes - 1;
    let n_sources = netlist.voltage_source_count();
    let dim = n_unknown_nodes + n_sources;

    let mut matrix = DenseMatrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];

    // Helper closures translating node ids into matrix rows (ground drops out).
    let row_of = |node: NodeId| -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.0 - 1)
        }
    };
    let stamp_conductance = |m: &mut DenseMatrix, a: NodeId, b: NodeId, g: f64| {
        if let Some(ra) = row_of(a) {
            m[(ra, ra)] += g;
        }
        if let Some(rb) = row_of(b) {
            m[(rb, rb)] += g;
        }
        if let (Some(ra), Some(rb)) = (row_of(a), row_of(b)) {
            m[(ra, rb)] -= g;
            m[(rb, ra)] -= g;
        }
    };
    let stamp_current = |rhs: &mut [f64], into: NodeId, out_of: NodeId, amps: f64| {
        if let Some(r) = row_of(into) {
            rhs[r] += amps;
        }
        if let Some(r) = row_of(out_of) {
            rhs[r] -= amps;
        }
    };

    let mut source_index = 0usize;
    for element in netlist.elements() {
        match element {
            Element::Resistor { a, b, ohms } => {
                stamp_conductance(&mut matrix, *a, *b, 1.0 / ohms);
            }
            Element::Capacitor { a, b, farads } => {
                if let (Some(prev), Some(dt)) = (ctx.previous, ctx.dt) {
                    let geq = farads / dt;
                    stamp_conductance(&mut matrix, *a, *b, geq);
                    let v_old = prev[a.0] - prev[b.0];
                    stamp_current(&mut rhs, *a, *b, geq * v_old);
                }
                // In DC the capacitor is an open circuit: no stamp.
            }
            Element::VoltageSource {
                plus,
                minus,
                waveform,
            } => {
                let col = n_unknown_nodes + source_index;
                if let Some(rp) = row_of(*plus) {
                    matrix[(rp, col)] += 1.0;
                    matrix[(col, rp)] += 1.0;
                }
                if let Some(rm) = row_of(*minus) {
                    matrix[(rm, col)] -= 1.0;
                    matrix[(col, rm)] -= 1.0;
                }
                rhs[col] = waveform.value(ctx.time);
                source_index += 1;
            }
            Element::CurrentSource { plus, minus, amps } => {
                stamp_current(&mut rhs, *plus, *minus, *amps);
            }
            Element::Nonlinear { a, b, device } => {
                let v = ctx.candidate[a.0] - ctx.candidate[b.0];
                let i0 = device.current(v);
                let g = device.conductance(v).max(1e-15);
                stamp_conductance(&mut matrix, *a, *b, g);
                // Linearised constant term: i(v) ≈ g·v + (i0 − g·v₀); the
                // constant part acts as a current source from a to b.
                stamp_current(&mut rhs, *a, *b, g * v - i0);
            }
        }
    }

    (matrix, rhs)
}

fn newton_solve(
    netlist: &Netlist,
    previous: Option<&[f64]>,
    dt: Option<f64>,
    time: f64,
    initial: &[f64],
    options: NewtonOptions,
) -> Result<Solution, CircuitError> {
    let n_nodes = netlist.node_count();
    let n_unknown = n_nodes - 1;
    let mut node_voltages = initial.to_vec();
    let mut source_currents = vec![0.0; netlist.voltage_source_count()];

    let mut last_update = f64::INFINITY;
    for _iteration in 0..options.max_iterations {
        let ctx = AssemblyContext {
            candidate: &node_voltages,
            previous,
            dt,
            time,
        };
        let (matrix, rhs) = assemble(netlist, &ctx);
        let x = matrix.solve(&rhs)?;

        last_update = 0.0;
        for node in 1..n_nodes {
            let new = x[node - 1];
            let delta = (new - node_voltages[node]).clamp(-options.max_step, options.max_step);
            last_update = last_update.max(delta.abs());
            node_voltages[node] += delta;
        }
        let n_sources = source_currents.len();
        source_currents.copy_from_slice(&x[n_unknown..n_unknown + n_sources]);
        if last_update < options.tolerance {
            return Ok(Solution {
                node_voltages,
                source_currents,
            });
        }
    }
    Err(CircuitError::NewtonDiverged {
        iterations: options.max_iterations,
        last_update,
    })
}

/// Computes the DC operating point of the netlist at `t = 0`.
///
/// Capacitors are treated as open circuits and pulse sources are evaluated at
/// `t = 0`.
///
/// # Errors
///
/// Returns [`CircuitError`] if the Newton iteration or the linear solver fail.
pub fn solve_dc(netlist: &Netlist) -> Result<Solution, CircuitError> {
    let zeros = vec![0.0; netlist.node_count()];
    newton_solve(netlist, None, None, 0.0, &zeros, NewtonOptions::default())
}

/// Runs a fixed-step backward-Euler transient analysis.
///
/// Stateful nonlinear devices receive a [`commit`] call after every accepted
/// step so they can advance their internal state.
///
/// [`commit`]: crate::netlist::NonlinearTwoTerminal::commit
///
/// # Errors
///
/// Returns [`CircuitError::InvalidTransient`] for non-positive `dt`/`t_stop`
/// and propagates solver failures.
pub fn run_transient(
    netlist: &mut Netlist,
    options: TransientOptions,
) -> Result<TransientResult, CircuitError> {
    if options.dt <= 0.0 || !options.dt.is_finite() {
        return Err(CircuitError::InvalidTransient {
            reason: "dt must be positive and finite",
        });
    }
    if options.t_stop <= 0.0 || !options.t_stop.is_finite() {
        return Err(CircuitError::InvalidTransient {
            reason: "t_stop must be positive and finite",
        });
    }

    // Start from the DC operating point at t = 0.
    let initial = solve_dc(netlist)?;
    let mut previous = initial.node_voltages.clone();

    let steps = (options.t_stop / options.dt).ceil() as usize;
    let mut result = TransientResult {
        times: Vec::with_capacity(steps + 1),
        voltages: Vec::with_capacity(steps + 1),
        source_currents: Vec::with_capacity(steps + 1),
    };
    result.times.push(0.0);
    result.voltages.push(initial.node_voltages.clone());
    result.source_currents.push(initial.source_currents.clone());

    let mut time = 0.0;
    for _ in 0..steps {
        let dt = options.dt.min(options.t_stop - time);
        if dt <= 0.0 {
            break;
        }
        time += dt;
        let solution = newton_solve(
            netlist,
            Some(&previous),
            Some(dt),
            time,
            &previous,
            options.newton,
        )?;

        // Commit stateful devices with their branch voltage.
        for element in netlist.elements_mut() {
            if let Element::Nonlinear { a, b, device } = element {
                let v = solution.node_voltages[a.0] - solution.node_voltages[b.0];
                device.commit(v, dt);
            }
        }

        previous = solution.node_voltages.clone();
        result.times.push(time);
        result.voltages.push(solution.node_voltages);
        result.source_currents.push(solution.source_currents);
    }

    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{NonlinearTwoTerminal, Waveform};

    #[test]
    fn voltage_divider_dc() {
        let mut n = Netlist::new();
        let top = n.node("top");
        let mid = n.node("mid");
        n.add_voltage_source(top, NodeId::GROUND, Waveform::Dc(2.0));
        n.add_resistor(top, mid, 1_000.0);
        n.add_resistor(mid, NodeId::GROUND, 1_000.0);
        let sol = solve_dc(&n).unwrap();
        assert!((sol.voltage(mid) - 1.0).abs() < 1e-9);
        assert!((sol.voltage(top) - 2.0).abs() < 1e-9);
        // Source current: 2 V over 2 kΩ = 1 mA, flowing out of + terminal.
        assert!((sol.source_current(0).abs() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.add_current_source(a, NodeId::GROUND, 2e-3);
        n.add_resistor(a, NodeId::GROUND, 500.0);
        let sol = solve_dc(&n).unwrap();
        assert!((sol.voltage(a) - 1.0).abs() < 1e-9);
    }

    #[derive(Debug)]
    struct Diode;
    impl NonlinearTwoTerminal for Diode {
        fn current(&self, v: f64) -> f64 {
            1e-12 * ((v / 0.02585).exp() - 1.0)
        }
    }

    #[test]
    fn diode_resistor_dc_converges() {
        let mut n = Netlist::new();
        let top = n.node("top");
        let mid = n.node("mid");
        n.add_voltage_source(top, NodeId::GROUND, Waveform::Dc(1.0));
        n.add_resistor(top, mid, 1_000.0);
        n.add_nonlinear(mid, NodeId::GROUND, Box::new(Diode));
        let sol = solve_dc(&n).unwrap();
        let v_diode = sol.voltage(mid);
        // The diode drop should land in the usual 0.5–0.7 V window and KCL
        // must hold: (1 − v)/1k ≈ I_diode(v).
        assert!(v_diode > 0.4 && v_diode < 0.8, "v_diode = {v_diode}");
        let i_r = (1.0 - v_diode) / 1_000.0;
        let i_d = Diode.current(v_diode);
        assert!((i_r - i_d).abs() < 1e-6 * i_r.max(1e-12));
    }

    #[test]
    fn rc_charging_follows_exponential() {
        let mut n = Netlist::new();
        let top = n.node("in");
        let out = n.node("out");
        n.add_voltage_source(top, NodeId::GROUND, Waveform::Dc(1.0));
        n.add_resistor(top, out, 1_000.0);
        n.add_capacitor(out, NodeId::GROUND, 1e-9);
        // τ = 1 µs. Run 3 τ with 10 ns steps.
        let result = run_transient(
            &mut n,
            TransientOptions {
                dt: 10e-9,
                t_stop: 3e-6,
                newton: NewtonOptions::default(),
            },
        )
        .unwrap();
        // Hold-up: at t=0 the DC solution already charges the capacitor
        // (capacitor open in DC), so instead check the final value is ~1 V
        // and the waveform is monotonic non-decreasing.
        let wave = result.node_waveform(out);
        assert!(wave.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert!((wave.last().unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rc_discharge_time_constant() {
        // Pulse source that drops from 1 V to 0 V at t = 0: the capacitor
        // voltage should decay with τ = RC.
        let mut n = Netlist::new();
        let top = n.node("in");
        let out = n.node("out");
        n.add_voltage_source(
            top,
            NodeId::GROUND,
            Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 0.0,
                width: 1e-12, // effectively only the DC point sees 1 V
                period: f64::INFINITY,
            },
        );
        n.add_resistor(top, out, 1_000.0);
        n.add_capacitor(out, NodeId::GROUND, 1e-9);
        let result = run_transient(
            &mut n,
            TransientOptions {
                dt: 5e-9,
                t_stop: 1e-6,
                newton: NewtonOptions::default(),
            },
        )
        .unwrap();
        let wave = result.node_waveform(out);
        let t_idx = result
            .times
            .iter()
            .position(|&t| t >= 1e-6 * 0.999)
            .unwrap();
        // After one time constant the voltage should be close to exp(-1).
        let expected = (-1.0f64).exp();
        assert!(
            (wave[t_idx] - expected).abs() < 0.05,
            "v(τ) = {} vs {expected}",
            wave[t_idx]
        );
    }

    #[test]
    fn pulse_source_waveform_propagates() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.add_voltage_source(
            a,
            NodeId::GROUND,
            Waveform::Pulse {
                low: 0.0,
                high: 1.05,
                delay: 20e-9,
                width: 30e-9,
                period: 100e-9,
            },
        );
        n.add_resistor(a, NodeId::GROUND, 1_000.0);
        let result = run_transient(
            &mut n,
            TransientOptions {
                dt: 5e-9,
                t_stop: 200e-9,
                newton: NewtonOptions::default(),
            },
        )
        .unwrap();
        let wave = result.node_waveform(a);
        let max = wave.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = wave.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 1.05).abs() < 1e-9);
        assert!(min.abs() < 1e-9);
    }

    #[derive(Debug)]
    struct Integrator {
        total: f64,
    }
    impl NonlinearTwoTerminal for Integrator {
        fn current(&self, v: f64) -> f64 {
            v / 1_000.0
        }
        fn commit(&mut self, v: f64, dt: f64) {
            self.total += v * dt;
        }
    }

    #[test]
    fn commit_is_called_every_step() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.add_voltage_source(a, NodeId::GROUND, Waveform::Dc(1.0));
        n.add_nonlinear(a, NodeId::GROUND, Box::new(Integrator { total: 0.0 }));
        let _ = run_transient(
            &mut n,
            TransientOptions {
                dt: 1e-9,
                t_stop: 10e-9,
                newton: NewtonOptions::default(),
            },
        )
        .unwrap();
        let total = match &n.elements()[1] {
            Element::Nonlinear { device, .. } => format!("{device:?}"),
            _ => unreachable!(),
        };
        // 1 V for 10 ns integrates to 1e-8 V·s.
        assert!(
            total.contains("1e-8") || total.contains("9.99"),
            "total = {total}"
        );
    }

    #[test]
    fn invalid_transient_options_rejected() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.add_voltage_source(a, NodeId::GROUND, Waveform::Dc(1.0));
        n.add_resistor(a, NodeId::GROUND, 100.0);
        let err = run_transient(
            &mut n,
            TransientOptions {
                dt: 0.0,
                t_stop: 1e-6,
                newton: NewtonOptions::default(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, CircuitError::InvalidTransient { .. }));
    }

    #[test]
    fn floating_node_reports_singular_matrix() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("floating");
        n.add_voltage_source(a, NodeId::GROUND, Waveform::Dc(1.0));
        n.add_resistor(a, NodeId::GROUND, 100.0);
        // Node `b` has no connection at all: the MNA matrix is singular.
        let _ = b;
        let err = solve_dc(&n).unwrap_err();
        assert!(matches!(err, CircuitError::Linear(_)));
    }

    #[test]
    fn final_solution_matches_last_sample() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.add_voltage_source(a, NodeId::GROUND, Waveform::Dc(0.7));
        n.add_resistor(a, NodeId::GROUND, 50.0);
        let result = run_transient(
            &mut n,
            TransientOptions {
                dt: 1e-9,
                t_stop: 5e-9,
                newton: NewtonOptions::default(),
            },
        )
        .unwrap();
        let last = result.final_solution();
        assert!((last.voltage(a) - 0.7).abs() < 1e-9);
    }
}
