//! Small dense linear algebra for the MNA equations.
//!
//! Crossbar netlists have tens of unknowns (node voltages plus voltage-source
//! branch currents), so a dense LU factorisation with partial pivoting is the
//! simplest dependable solver.

use std::error::Error;
use std::fmt;

/// A dense, row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors from the dense solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearError {
    /// The matrix is singular (or numerically so) at the given pivot column.
    Singular {
        /// Pivot column where elimination failed.
        column: usize,
    },
    /// Dimensions do not match.
    DimensionMismatch,
}

impl fmt::Display for LinearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearError::Singular { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
            LinearError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl Error for LinearError {}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * x[c]).sum())
            .collect()
    }

    /// Solves `A·x = b` by LU factorisation with partial pivoting. `self` is
    /// left untouched (the factorisation works on a copy).
    ///
    /// # Errors
    ///
    /// Returns [`LinearError::Singular`] if a pivot is (numerically) zero and
    /// [`LinearError::DimensionMismatch`] if shapes do not match.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinearError> {
        if self.rows != self.cols || b.len() != self.rows {
            return Err(LinearError::DimensionMismatch);
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivoting.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinearError::Singular { column: col });
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            let pivot = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for k in (col + 1)..n {
                sum -= a[col * n + k] * x[k];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [3; 5] → x = [0.8, 1.4]
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_like_system() {
        let n = 12;
        let mut a = DenseMatrix::zeros(n, n);
        // Deterministic pseudo-random fill that is diagonally dominant.
        for r in 0..n {
            let mut diag = 0.0;
            for c in 0..n {
                if r != c {
                    let v = (((r * 31 + c * 17) % 13) as f64 - 6.0) / 7.0;
                    a[(r, c)] = v;
                    diag += v.abs();
                }
            }
            a[(r, r)] = diag + 1.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::zeros(3, 3);
        assert!(matches!(
            a.solve(&[1.0, 1.0, 1.0]),
            Err(LinearError::Singular { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = DenseMatrix::zeros(3, 3);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(LinearError::DimensionMismatch));
        let b = DenseMatrix::zeros(2, 3);
        assert_eq!(b.solve(&[1.0, 2.0]), Err(LinearError::DimensionMismatch));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let a = DenseMatrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }
}
