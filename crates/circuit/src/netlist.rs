//! Circuit description: nodes, elements and source waveforms.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A time-dependent source waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Rectangular pulse train: `low` outside the pulse, `high` during it.
    Pulse {
        /// Value outside the pulse.
        low: f64,
        /// Value during the pulse.
        high: f64,
        /// Time of the first rising edge, s.
        delay: f64,
        /// Pulse width, s.
        width: f64,
        /// Pulse period, s (must be ≥ width; a period of `f64::INFINITY`
        /// yields a single pulse).
        period: f64,
    },
}

impl Waveform {
    /// Value of the waveform at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Pulse {
                low,
                high,
                delay,
                width,
                period,
            } => {
                if t < delay {
                    return low;
                }
                let local = if period.is_finite() {
                    (t - delay) % period
                } else {
                    t - delay
                };
                if local < width {
                    high
                } else {
                    low
                }
            }
        }
    }
}

/// A nonlinear two-terminal device that can be stamped into the MNA system.
///
/// `voltage` is the voltage from terminal `a` to terminal `b`. Implementors
/// provide the static current and (differential) conductance used for the
/// Newton linearisation; [`NonlinearTwoTerminal::commit`] is called once per
/// accepted transient step so stateful devices (memristors) can advance their
/// internal state.
pub trait NonlinearTwoTerminal: fmt::Debug {
    /// Static current through the device at the given branch voltage, A.
    fn current(&self, voltage: f64) -> f64;

    /// Differential conductance dI/dV at the given branch voltage, S.
    ///
    /// The default implementation uses a symmetric finite difference.
    fn conductance(&self, voltage: f64) -> f64 {
        let dv = 1e-6;
        (self.current(voltage + dv) - self.current(voltage - dv)) / (2.0 * dv)
    }

    /// Advances the device's internal state after an accepted step of length
    /// `dt` at branch voltage `voltage`. Stateless devices ignore this.
    fn commit(&mut self, voltage: f64, dt: f64) {
        let _ = (voltage, dt);
    }
}

/// One element of the netlist.
#[derive(Debug)]
pub enum Element {
    /// Ideal resistor.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohm (must be positive).
        ohms: f64,
    },
    /// Ideal capacitor.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farad (must be positive).
        farads: f64,
    },
    /// Ideal independent voltage source.
    VoltageSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source waveform.
        waveform: Waveform,
    },
    /// Ideal independent current source (current flows from `plus` through
    /// the external circuit into `minus`).
    CurrentSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source current in ampere.
        amps: f64,
    },
    /// A nonlinear two-terminal device.
    Nonlinear {
        /// First terminal (positive voltage reference).
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// The device model.
        device: Box<dyn NonlinearTwoTerminal>,
    },
}

/// Handle to an element, returned by the `add_*` methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub usize);

/// A circuit netlist.
#[derive(Debug, Default)]
pub struct Netlist {
    node_names: HashMap<String, NodeId>,
    node_count: usize,
    elements: Vec<Element>,
}

impl Netlist {
    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        let mut node_names = HashMap::new();
        node_names.insert("0".to_string(), NodeId::GROUND);
        Netlist {
            node_names,
            node_count: 1,
            elements: Vec::new(),
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The name `"0"` (and `"gnd"`) always refers to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return NodeId::GROUND;
        }
        if let Some(&id) = self.node_names.get(name) {
            return id;
        }
        let id = NodeId(self.node_count);
        self.node_count += 1;
        self.node_names.insert(name.to_string(), id);
        id
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Number of independent voltage sources.
    pub fn voltage_source_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. }))
            .count()
    }

    /// Elements of the netlist.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable access to the elements (used by the transient loop to commit
    /// stateful devices).
    pub fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive"
        );
        self.push(Element::Resistor { a, b, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not strictly positive.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "capacitance must be positive"
        );
        self.push(Element::Capacitor { a, b, farads })
    }

    /// Adds an independent voltage source.
    pub fn add_voltage_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        waveform: Waveform,
    ) -> ElementId {
        self.push(Element::VoltageSource {
            plus,
            minus,
            waveform,
        })
    }

    /// Adds an independent current source.
    pub fn add_current_source(&mut self, plus: NodeId, minus: NodeId, amps: f64) -> ElementId {
        self.push(Element::CurrentSource { plus, minus, amps })
    }

    /// Adds a nonlinear two-terminal device.
    pub fn add_nonlinear(
        &mut self,
        a: NodeId,
        b: NodeId,
        device: Box<dyn NonlinearTwoTerminal>,
    ) -> ElementId {
        self.push(Element::Nonlinear { a, b, device })
    }

    fn push(&mut self, element: Element) -> ElementId {
        self.elements.push(element);
        ElementId(self.elements.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_names_are_deduplicated() {
        let mut n = Netlist::new();
        let a = n.node("wl0");
        let b = n.node("wl0");
        let c = n.node("wl1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(n.node_count(), 3);
    }

    #[test]
    fn ground_aliases() {
        let mut n = Netlist::new();
        assert_eq!(n.node("0"), NodeId::GROUND);
        assert_eq!(n.node("gnd"), NodeId::GROUND);
        assert_eq!(n.node("GND"), NodeId::GROUND);
        assert!(NodeId::GROUND.is_ground());
    }

    #[test]
    fn element_counters() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        n.add_resistor(a, b, 100.0);
        n.add_voltage_source(a, NodeId::GROUND, Waveform::Dc(1.0));
        n.add_current_source(b, NodeId::GROUND, 1e-3);
        n.add_capacitor(a, NodeId::GROUND, 1e-12);
        assert_eq!(n.element_count(), 4);
        assert_eq!(n.voltage_source_count(), 1);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.add_resistor(a, NodeId::GROUND, 0.0);
    }

    #[test]
    fn dc_waveform_is_constant() {
        let w = Waveform::Dc(0.7);
        assert_eq!(w.value(0.0), 0.7);
        assert_eq!(w.value(1e9), 0.7);
    }

    #[test]
    fn pulse_waveform_repeats() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 10e-9,
            width: 50e-9,
            period: 100e-9,
        };
        assert_eq!(w.value(0.0), 0.0);
        assert_eq!(w.value(11e-9), 1.0);
        assert_eq!(w.value(70e-9), 0.0);
        // Second period.
        assert_eq!(w.value(111e-9), 1.0);
        assert_eq!(w.value(170e-9), 0.0);
    }

    #[test]
    fn single_pulse_with_infinite_period() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 2.0,
            delay: 0.0,
            width: 1e-9,
            period: f64::INFINITY,
        };
        assert_eq!(w.value(0.5e-9), 2.0);
        assert_eq!(w.value(5e-9), 0.0);
    }

    #[derive(Debug)]
    struct Diode;
    impl NonlinearTwoTerminal for Diode {
        fn current(&self, v: f64) -> f64 {
            1e-12 * ((v / 0.026).exp() - 1.0)
        }
    }

    #[test]
    fn default_conductance_is_finite_difference() {
        let d = Diode;
        let g = d.conductance(0.3);
        let expected = 1e-12 / 0.026 * (0.3f64 / 0.026).exp();
        assert!((g - expected).abs() / expected < 1e-3);
    }
}
