//! A small modified-nodal-analysis (MNA) circuit simulator — the
//! Cadence-Virtuoso substitute of the NeuroHammer reproduction
//! (Section IV-B of the paper).
//!
//! The circuit-level part of the paper's framework drives a passive
//! memristive crossbar with rectangular pulses and simulates the resulting
//! currents and device state changes. This crate provides the generic
//! circuit machinery for that:
//!
//! * [`netlist`] — nodes, resistors, capacitors, independent sources with DC
//!   and pulse waveforms, and a [`netlist::NonlinearTwoTerminal`] trait for
//!   device models such as the VCM cell of `rram-jart`;
//! * [`dense`] — dense LU solver for the MNA equations;
//! * [`analysis`] — Newton–Raphson DC operating point and fixed-step
//!   backward-Euler transient analysis, with a per-step `commit` callback so
//!   stateful devices can advance their internal state.
//!
//! The crossbar crate uses this engine for its *detailed* simulation mode
//! (including line resistances and sneak paths); the fast pulse engine used
//! for long hammering campaigns bypasses the matrix solve and is validated
//! against this engine in integration tests.
//!
//! # Examples
//!
//! A resistive divider:
//!
//! ```
//! use rram_circuit::{Netlist, NodeId, Waveform, solve_dc};
//!
//! let mut netlist = Netlist::new();
//! let top = netlist.node("top");
//! let mid = netlist.node("mid");
//! netlist.add_voltage_source(top, NodeId::GROUND, Waveform::Dc(1.0));
//! netlist.add_resistor(top, mid, 10_000.0);
//! netlist.add_resistor(mid, NodeId::GROUND, 10_000.0);
//! let solution = solve_dc(&netlist)?;
//! assert!((solution.voltage(mid) - 0.5).abs() < 1e-9);
//! # Ok::<(), rram_circuit::CircuitError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod dense;
pub mod netlist;

pub use analysis::{
    run_transient, solve_dc, CircuitError, NewtonOptions, Solution, TransientOptions,
    TransientResult,
};
pub use dense::{DenseMatrix, LinearError};
pub use netlist::{Element, ElementId, Netlist, NodeId, NonlinearTwoTerminal, Waveform};
