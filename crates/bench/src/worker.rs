//! The reusable campaign runner behind the figure binaries and the
//! `neurohammer-worker` fleet binary.
//!
//! [`run_figure_campaign`](crate::run_figure_campaign) used to own the
//! whole execution loop — shard selection, checkpoint writing, the live
//! progress line. That loop is exactly what a fleet worker needs too, so
//! it lives here as [`execute_shard`]: a flag-free, `Result`-returning
//! core the CLI wrapper and the campaign service share. Callers pass a
//! [`RunOptions`] (instead of command-line flags) and an event sink that
//! observes every [`CampaignEvent`] after the runner's own bookkeeping
//! (checkpointing, progress) has seen it — the worker binary uses the
//! sink to stream `PointFinished` results back to the server.

use std::collections::HashSet;
use std::io::IsTerminal;
use std::path::PathBuf;

use neurohammer::campaign::{
    read_checkpoint, CampaignError, CampaignEvent, CampaignExecutor, CampaignOutcome,
    CampaignReport, CampaignSpec, CheckpointWriter, Shard,
};
use rram_analysis::ascii_plot::progress_line;

/// Where [`execute_shard`] checkpoints finished points.
#[derive(Debug, Clone)]
pub struct CheckpointSink {
    /// JSONL file receiving one [`CampaignOutcome`] per line.
    pub path: PathBuf,
    /// Append to an existing file (resume semantics — the reader
    /// de-duplicates by key) instead of starting it from scratch.
    pub append: bool,
}

/// Execution options for [`execute_shard`] — the programmatic form of the
/// figure binaries' `--shard`/`--checkpoint`/`--resume`/`--alpha-cache`
/// flags.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// The grid slice to execute (default: the whole grid).
    pub shard: Shard,
    /// Already-finished outcomes to replay instead of re-running — a read
    /// checkpoint, or the resume set a campaign-service lease carries.
    pub resume: Vec<CampaignOutcome>,
    /// Checkpoint each finished point to this JSONL sink.
    pub checkpoint: Option<CheckpointSink>,
    /// Directory of the persistent α-matrix cache.
    pub alpha_cache: Option<PathBuf>,
    /// Render the live progress line on stderr.
    pub progress: bool,
}

/// Executes one shard of a campaign through the streaming executor.
///
/// Validates the spec (by constructing the [`CampaignExecutor`]), applies
/// the options, and forwards every event to `on_event` — after recording
/// `PointFinished` outcomes to the checkpoint sink and updating the
/// progress line, so the sink observes the same stream the runner acted
/// on. Resumed points replay through the sink like freshly computed ones.
///
/// # Errors
///
/// Returns the executor's validation/IO errors, or the first checkpoint
/// write failure (after the run completes, so no computed point is lost
/// silently).
pub fn execute_shard<F>(
    spec: CampaignSpec,
    options: RunOptions,
    mut on_event: F,
) -> Result<CampaignReport, CampaignError>
where
    F: FnMut(&CampaignEvent),
{
    let mut executor = CampaignExecutor::new(spec)?.with_shard(options.shard)?;
    if let Some(dir) = options.alpha_cache {
        executor = executor.with_alpha_cache(dir);
    }
    if !options.resume.is_empty() {
        executor = executor.resume_from(options.resume);
    }
    let mut writer = match &options.checkpoint {
        Some(sink) => Some(if sink.append {
            CheckpointWriter::append(&sink.path)
        } else {
            CheckpointWriter::create(&sink.path)
        }?),
        None => None,
    };

    let name = executor.spec().name.clone();
    let shard = executor.shard();
    // Carriage-return redraw is for humans at a terminal; in a pipe or a
    // CI log it smears every intermediate frame onto one unreadable line,
    // so a non-TTY stderr gets plain newline-delimited decile updates.
    let interactive = options.progress && std::io::stderr().is_terminal();
    let (mut total, mut done) = (0usize, 0usize);
    let mut last_decile = 0usize;
    let mut sink_error = None;
    let report = executor.execute(|event| {
        match &event {
            CampaignEvent::Started { total: points } => {
                total = *points;
                if options.progress {
                    eprintln!("campaign {name:?}: {points} points (shard {shard})");
                }
            }
            CampaignEvent::PointFinished(outcome) => {
                if let Some(writer) = writer.as_mut() {
                    if sink_error.is_none() {
                        if let Err(e) = writer.record(outcome) {
                            sink_error = Some(e);
                        }
                    }
                }
                done += 1;
                if interactive {
                    eprint!("\r{}", progress_line(done, total, 40));
                } else if options.progress && total > 0 {
                    let decile = done * 10 / total;
                    if decile > last_decile {
                        last_decile = decile;
                        eprintln!("{}", progress_line(done, total, 40));
                    }
                }
            }
            CampaignEvent::Finished => {
                if interactive {
                    eprintln!();
                }
            }
        }
        on_event(&event);
    })?;
    match sink_error {
        Some(error) => Err(error),
        None => Ok(report),
    }
}

/// Reads the given checkpoint files and merges them into one report for
/// `spec`'s grid: outcomes are de-duplicated by point key and re-sorted
/// into grid order, so a merge covering the full grid is byte-identical
/// to an unsharded run. An incomplete merge (a forgotten shard file)
/// warns loudly on stderr but still returns the partial report.
///
/// # Errors
///
/// Returns an error for an unreadable checkpoint, conflicting outcomes
/// for the same point, or outcomes that do not belong to `spec`'s grid.
pub fn merge_checkpoints(
    spec: &CampaignSpec,
    paths: &[PathBuf],
) -> Result<CampaignReport, CampaignError> {
    let mut reports = Vec::with_capacity(paths.len());
    for path in paths {
        reports.push(CampaignReport {
            name: spec.name.clone(),
            outcomes: read_checkpoint(path)?,
        });
    }
    let merged = CampaignReport::merge(reports)?;
    let expected: HashSet<_> = spec
        .keyed_points()
        .into_iter()
        .map(|(key, _)| key)
        .collect();
    let foreign = merged
        .outcomes
        .iter()
        .filter(|outcome| !expected.contains(&outcome.key))
        .count();
    if foreign > 0 {
        return Err(CampaignError::InvalidValue(format!(
            "{foreign} merged outcome(s) do not belong to this campaign \
             (wrong checkpoint files, or a different --campaign/--quick profile?)"
        )));
    }
    if merged.outcomes.len() < expected.len() {
        eprintln!(
            "warning: merged checkpoints cover {}/{} grid points — the \
             rendered figure is partial (missing shard file?)",
            merged.outcomes.len(),
            expected.len()
        );
    }
    Ok(merged)
}
