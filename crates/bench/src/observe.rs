//! The `--tui` and `--html` observability modes of the figure binaries.
//!
//! This module is the translation layer between campaign types and the
//! campaign-agnostic renderers in `rram_analysis`:
//!
//! * [`TuiDriver`] folds live [`CampaignEvent`]s into a
//!   [`Dashboard`] and redraws it in place
//!   on stderr. `--tui` demands a terminal — on a pipe the ANSI redraw
//!   would shred the log, so the flag refuses loudly instead.
//! * [`render_html`] exports a finished [`CampaignReport`] as one
//!   self-contained HTML file: inline SVG sweep charts, the numeric
//!   tables, the campaign fingerprint and the deterministic telemetry
//!   snapshot. Identical reports export byte-identical files (the
//!   `report-smoke` CI job diffs two runs).

use std::io::{IsTerminal, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use neurohammer::campaign::{
    CampaignAxis, CampaignEvent, CampaignOutcome, CampaignReport, CampaignSpec,
};
use rram_analysis::html::{svg_chart, HtmlReport, SvgSeries};
use rram_analysis::tui::{Dashboard, TuiEvent, TuiPoint};
use rram_telemetry::{Registry, SnapshotMode};

/// Reads the `--tui` flag.
pub fn tui_requested() -> bool {
    std::env::args().any(|a| a == "--tui")
}

/// Reads the `--html <path>` flag: where to write the self-contained
/// HTML report.
///
/// # Panics
///
/// Panics when the flag has no path argument.
pub fn html_requested() -> Option<PathBuf> {
    crate::flag_value("--html").map(PathBuf::from)
}

/// Translates one finished outcome for the dashboard: series grouped the
/// same way the final figure slices them ([`CampaignPoint::series_key`]
/// over `axis`), defence points carrying their Pareto coordinates.
///
/// [`CampaignPoint::series_key`]: neurohammer::campaign::CampaignPoint::series_key
pub fn tui_point(outcome: &CampaignOutcome, axis: CampaignAxis) -> TuiPoint {
    TuiPoint {
        series: outcome.point.series_key(axis),
        x: outcome.point.axis_value(axis),
        label: outcome.point.axis_label(axis),
        pulses: outcome.flipped.then_some(outcome.pulses),
        flipped: outcome.flipped,
        pareto: outcome.defense.map(|defense| {
            (
                outcome.point.guard.label(),
                defense.protection(),
                defense.overhead_fraction,
            )
        }),
        wall_ns: outcome.wall_ns,
    }
}

/// Translates one campaign event for the dashboard.
pub fn tui_event(event: &CampaignEvent, axis: CampaignAxis) -> TuiEvent {
    match event {
        CampaignEvent::Started { total } => TuiEvent::Started { total: *total },
        CampaignEvent::PointFinished(outcome) => TuiEvent::Point(tui_point(outcome, axis)),
        CampaignEvent::Finished => TuiEvent::Finished,
    }
}

/// Drives the live dashboard from a stream of campaign events.
pub struct TuiDriver {
    dashboard: Dashboard,
    axis: CampaignAxis,
    started: Instant,
    last_draw: Option<Instant>,
    width_probed: Option<(Instant, usize)>,
    rate_trend: Vec<f64>,
}

/// Width used when every probe fails (`$COLUMNS` unset, no `stty`).
const TUI_FALLBACK_WIDTH: usize = 100;

/// Minimum delay between redraws, so sub-millisecond points do not spend
/// the run repainting.
const TUI_REDRAW: Duration = Duration::from_millis(100);

/// How long a probed terminal width stays fresh. Re-probing every frame
/// would fork `stty` hundreds of times a second; half a second tracks
/// window resizes closely enough for a dashboard.
const TUI_WIDTH_REFRESH: Duration = Duration::from_millis(500);

/// Samples kept in the live points/s trend sparkline.
const TUI_TREND_SAMPLES: usize = 60;

/// Parses a `$COLUMNS`-style value: a positive decimal column count.
fn columns_width(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Asks `stty` for the size of the terminal behind **stderr** (the fd
/// the dashboard draws on — stdin/stdout may well be redirected).
fn stty_width() -> Option<usize> {
    // BSD/macOS stty spells the device flag `-f`; GNU coreutils `-F`.
    let device_flag = if cfg!(target_os = "macos") {
        "-f"
    } else {
        "-F"
    };
    let output = std::process::Command::new("stty")
        .args([device_flag, "/dev/stderr", "size"])
        .stderr(std::process::Stdio::null())
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    // `stty size` prints "rows cols".
    let text = String::from_utf8(output.stdout).ok()?;
    columns_width(text.split_whitespace().nth(1))
}

/// Probes the current terminal width: `$COLUMNS` when exported, else
/// `stty size` against stderr, else a 100-column fallback. The TUI
/// re-queries this every frame (cached for half a second), so resizing
/// the window reflows the dashboard instead of wrapping it.
pub fn terminal_width() -> usize {
    columns_width(std::env::var("COLUMNS").ok().as_deref())
        .or_else(stty_width)
        .unwrap_or(TUI_FALLBACK_WIDTH)
}

impl TuiDriver {
    /// A driver titled `title`, slicing series over `axis`.
    pub fn new(title: impl Into<String>, axis: CampaignAxis) -> TuiDriver {
        TuiDriver {
            dashboard: Dashboard::new(title),
            axis,
            started: Instant::now(),
            last_draw: None,
            width_probed: None,
            rate_trend: Vec::new(),
        }
    }

    /// Builds a driver when `--tui` was passed. Exits with a clear
    /// message when stderr is not a terminal: the in-place ANSI redraw is
    /// meaningless in a pipe or a CI log (use the plain progress line, or
    /// `--html` for an artifact, instead).
    pub fn from_flags(title: &str, axis: CampaignAxis) -> Option<TuiDriver> {
        if !tui_requested() {
            return None;
        }
        if !std::io::stderr().is_terminal() {
            eprintln!(
                "--tui needs stderr to be a terminal (the dashboard redraws in place \
                 with ANSI escapes); run without --tui for plain progress, or use \
                 --html <path> for a CI-friendly artifact"
            );
            std::process::exit(2);
        }
        Some(TuiDriver::new(title, axis))
    }

    /// Folds one event in and redraws (rate-limited; `Started`/`Finished`
    /// always repaint).
    pub fn observe(&mut self, event: &CampaignEvent) {
        self.dashboard.on_event(&tui_event(event, self.axis));
        let force = !matches!(event, CampaignEvent::PointFinished(_));
        self.draw(force);
    }

    /// Replaces the fleet status lines (the remote follower reports shard
    /// and worker states here) and redraws.
    pub fn status(&mut self, lines: Vec<String>) {
        self.dashboard.on_event(&TuiEvent::Status(lines));
        self.draw(false);
    }

    fn draw(&mut self, force: bool) {
        let now = Instant::now();
        if !force && self.last_draw.is_some_and(|last| now - last < TUI_REDRAW) {
            return;
        }
        self.last_draw = Some(now);
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            self.rate_trend.push(self.dashboard.done() as f64 / elapsed);
            if self.rate_trend.len() > TUI_TREND_SAMPLES {
                self.rate_trend.remove(0);
            }
            self.dashboard.on_event(&TuiEvent::Trend {
                name: "points/s".into(),
                values: self.rate_trend.clone(),
            });
        }
        let width = match self.width_probed {
            Some((at, width)) if now - at < TUI_WIDTH_REFRESH => width,
            _ => {
                let width = terminal_width();
                self.width_probed = Some((now, width));
                width
            }
        };
        let frame = self.dashboard.ansi_frame(width, elapsed);
        let mut stderr = std::io::stderr().lock();
        let _ = stderr.write_all(frame.as_bytes());
        let _ = stderr.flush();
    }

    /// Leaves the finished dashboard on screen and moves the cursor past
    /// it, so subsequent stdout output (the rendered figure) starts below.
    pub fn finish(mut self) {
        self.draw(true);
        eprintln!();
    }
}

/// Human axis label for chart captions.
fn axis_caption(axis: CampaignAxis) -> &'static str {
    match axis {
        CampaignAxis::ArraySize => "array rows",
        CampaignAxis::Pattern => "attack pattern (index)",
        CampaignAxis::Amplitude => "amplitude [V]",
        CampaignAxis::PulseLength => "pulse length [ns]",
        CampaignAxis::DutyCycle => "duty cycle",
        CampaignAxis::Spacing => "electrode spacing [nm]",
        CampaignAxis::Ambient => "ambient temperature [K]",
        CampaignAxis::Scheme => "write scheme (index)",
        CampaignAxis::Guard => "guard threshold",
        CampaignAxis::Spread => "spread scale σ",
        CampaignAxis::Backend => "backend (index)",
        CampaignAxis::Trial => "trial",
    }
}

/// Whether a sweep axis reads better log-scaled: strictly positive
/// values spanning at least one decade.
fn log_axis(values: impl Iterator<Item = f64> + Clone) -> bool {
    let mut positive = values.clone().peekable();
    if positive.peek().is_none() {
        return false;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for value in values {
        if value <= 0.0 {
            return false;
        }
        lo = lo.min(value);
        hi = hi.max(value);
    }
    hi / lo >= 10.0
}

/// Renders a campaign report as one self-contained HTML document — see
/// the module docs for the sections. Pure function of its inputs plus
/// the global telemetry registry's deterministic snapshot, so identical
/// reports render byte-identically.
pub fn render_html(
    title: &str,
    spec: &CampaignSpec,
    report: &CampaignReport,
    axis: CampaignAxis,
) -> String {
    let mut doc = HtmlReport::new(title);

    doc.section("Campaign");
    let flips = report.outcomes.iter().filter(|o| o.flipped).count();
    doc.key_values(&[
        ("name".into(), spec.name.clone()),
        ("fingerprint".into(), format!("{:016x}", spec.fingerprint())),
        ("grid points".into(), spec.keyed_points().len().to_string()),
        ("outcomes".into(), report.outcomes.len().to_string()),
        ("victim flips".into(), flips.to_string()),
    ]);

    for series in report.series_over(axis) {
        doc.section(&series.name);
        let points: Vec<(f64, f64)> = series
            .points
            .iter()
            .filter_map(|p| p.pulses.map(|n| (p.parameter, n as f64)))
            .collect();
        let log_x = log_axis(points.iter().map(|&(x, _)| x));
        doc.raw(svg_chart(
            &[SvgSeries {
                name: "pulses to flip".into(),
                points,
            }],
            axis_caption(axis),
            "pulses to a bit-flip",
            log_x,
            true,
        ));
        doc.preformatted(crate::series_table(&series, axis_caption(axis)).to_string());
    }

    if report.outcomes.iter().any(|o| o.defense.is_some()) {
        doc.section("Defence Pareto front");
        let pareto = report.defense_pareto();
        let split = |on_front: bool| -> Vec<(f64, f64)> {
            let mut points: Vec<(f64, f64)> = pareto
                .iter()
                .filter(|p| p.on_front == on_front)
                .map(|p| (p.mean_overhead, p.protection))
                .collect();
            points.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
            points
        };
        doc.raw(svg_chart(
            &[
                SvgSeries {
                    name: "Pareto front".into(),
                    points: split(true),
                },
                SvgSeries {
                    name: "dominated".into(),
                    points: split(false),
                },
            ],
            "mean overhead fraction",
            "P(block)",
            false,
            false,
        ));
        doc.preformatted(report.pareto_table().to_string());
    }

    doc.section("Numbers");
    doc.paragraph(
        "Raw per-point campaign results — the exact rows behind the charts, \
         bit-identical to the --csv output.",
    );
    doc.preformatted(report.to_csv_string());

    doc.section("Telemetry snapshot");
    doc.paragraph(
        "Deterministic subset of the process-global telemetry registry: \
         volatile families (durations, rates, histograms) are excluded, so \
         identical campaigns snapshot identically.",
    );
    doc.preformatted(Registry::global().snapshot_json(SnapshotMode::Deterministic));

    doc.render()
}

/// Writes the `--html` report when the flag was passed.
///
/// # Panics
///
/// Panics when the file cannot be written (figure binaries are
/// command-line tools).
pub fn maybe_write_html(
    title: &str,
    spec: &CampaignSpec,
    report: &CampaignReport,
    axis: CampaignAxis,
) {
    let Some(path) = html_requested() else {
        return;
    };
    let html = render_html(title, spec, report, axis);
    std::fs::write(&path, html).unwrap_or_else(|e| panic!("cannot write --html {path:?}: {e}"));
    eprintln!("wrote HTML report to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rram_units::{Kelvin, Seconds};

    fn tiny_report() -> (CampaignSpec, CampaignReport) {
        let spec = CampaignSpec {
            name: "observe test".into(),
            pulse_lengths_ns: vec![10.0, 100.0],
            max_pulses: 1_000,
            ..Default::default()
        };
        let keyed = spec.keyed_points();
        let outcomes: Vec<CampaignOutcome> = keyed
            .iter()
            .enumerate()
            .map(|(i, &(key, point))| CampaignOutcome {
                key,
                point,
                flipped: i == 0,
                pulses: 123,
                victim_drift: 0.25,
                final_crosstalk: Kelvin(1.5),
                sim_time: Seconds(1e-6),
                collateral_flips: 0,
                defense: None,
                wall_ns: Some(1_000 + i as u64),
            })
            .collect();
        let report = CampaignReport {
            name: spec.name.clone(),
            outcomes,
        };
        (spec, report)
    }

    #[test]
    fn tui_point_carries_axis_coordinates() {
        let (_, report) = tiny_report();
        let point = tui_point(&report.outcomes[0], CampaignAxis::PulseLength);
        assert_eq!(point.x, 10.0);
        assert_eq!(point.label, "10 ns");
        assert_eq!(point.pulses, Some(123));
        assert!(point.flipped);
        assert!(point.pareto.is_none());
        assert_eq!(point.wall_ns, Some(1_000));
    }

    #[test]
    fn tui_events_drive_a_dashboard() {
        let (_, report) = tiny_report();
        let mut dash = rram_analysis::tui::Dashboard::new("t");
        dash.on_event(&tui_event(
            &CampaignEvent::Started { total: 2 },
            CampaignAxis::PulseLength,
        ));
        for outcome in &report.outcomes {
            dash.on_event(&tui_event(
                &CampaignEvent::PointFinished(outcome.clone()),
                CampaignAxis::PulseLength,
            ));
        }
        dash.on_event(&tui_event(
            &CampaignEvent::Finished,
            CampaignAxis::PulseLength,
        ));
        assert_eq!(dash.done(), 2);
        assert!(dash.finished());
        let frame = dash.frame(100, 1.0);
        assert!(frame.contains("2/2"), "{frame}");
        assert!(frame.contains("campaign finished"), "{frame}");
    }

    #[test]
    fn html_export_is_reproducible_and_self_contained() {
        let (spec, report) = tiny_report();
        let first = render_html("demo", &spec, &report, CampaignAxis::PulseLength);
        let second = render_html("demo", &spec, &report, CampaignAxis::PulseLength);
        assert_eq!(first, second);
        assert!(first.contains(&format!("{:016x}", spec.fingerprint())));
        assert!(first.contains("<svg "));
        assert!(first.contains("Telemetry snapshot"));
        // Self-contained: no external references.
        assert!(!first.contains("http://") || first.contains("www.w3.org"));
        assert!(!first.contains("<script"));
    }

    #[test]
    fn columns_width_wants_a_positive_integer() {
        assert_eq!(columns_width(Some("120")), Some(120));
        assert_eq!(columns_width(Some(" 80 \n")), Some(80));
        assert_eq!(columns_width(Some("0")), None);
        assert_eq!(columns_width(Some("wide")), None);
        assert_eq!(columns_width(None), None);
    }

    #[test]
    fn terminal_width_always_falls_back_to_something_usable() {
        assert!(terminal_width() >= 1);
    }

    #[test]
    fn log_axis_wants_a_positive_decade() {
        assert!(log_axis([10.0, 1000.0].into_iter()));
        assert!(!log_axis([10.0, 20.0].into_iter()));
        assert!(!log_axis([0.0, 100.0].into_iter()));
        assert!(!log_axis(std::iter::empty()));
    }
}
