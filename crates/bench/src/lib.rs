//! Shared helpers for the figure-regeneration binaries and Criterion
//! benchmarks of the NeuroHammer reproduction.
//!
//! Each binary in `src/bin/` regenerates one table/figure of the paper (see
//! `DESIGN.md` for the experiment index) and prints it as a plain-text table
//! plus a log-scale ASCII chart; `EXPERIMENTS.md` records the outputs next to
//! the paper's values.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use neurohammer::{ExperimentSetup, SweepSeries};
use rram_analysis::ascii_plot::log_bar_chart;
use rram_analysis::Table;

/// Returns the experiment setup used by the figure binaries.
///
/// `quick` (set via the `NEUROHAMMER_QUICK` environment variable or the
/// `--quick` flag) switches to synthetic coupling coefficients and a smaller
/// pulse budget so a full regeneration finishes in a couple of minutes.
pub fn figure_setup(quick: bool) -> ExperimentSetup {
    if quick {
        ExperimentSetup {
            max_pulses: 1_500_000,
            batching: true,
            ..ExperimentSetup::quick()
        }
    } else {
        ExperimentSetup {
            // Pulse batching keeps the multi-point sweeps tractable; the
            // ablation binary quantifies its (small) bias against exact
            // pulse-by-pulse simulation.
            batching: true,
            ..ExperimentSetup::default()
        }
    }
}

/// Reads the `--quick` flag / `NEUROHAMMER_QUICK` environment variable.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("NEUROHAMMER_QUICK").is_some()
}

/// Formats a sweep series as a table with one row per point.
pub fn series_table(series: &SweepSeries, parameter_name: &str) -> Table {
    let mut table = Table::with_headers(&[parameter_name, "# pulses to trigger a bit-flip"]);
    for point in &series.points {
        let pulses = point
            .pulses
            .map(|p| p.to_string())
            .unwrap_or_else(|| "no flip within budget".to_string());
        table.push_row(vec![point.label.clone(), pulses]);
    }
    table
}

/// Prints a series as a table followed by a log-scale bar chart.
pub fn print_series(series: &SweepSeries, parameter_name: &str) {
    println!("## {}", series.name);
    println!("{}", series_table(series, parameter_name));
    let bars: Vec<(String, f64)> = series
        .points
        .iter()
        .filter_map(|p| p.pulses.map(|n| (p.label.clone(), n as f64)))
        .collect();
    if let Some(chart) = log_bar_chart(&bars, 50) {
        println!("{chart}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurohammer::SweepPoint;

    fn series() -> SweepSeries {
        SweepSeries {
            name: "demo".into(),
            points: vec![
                SweepPoint {
                    parameter: 10.0,
                    label: "10 ns".into(),
                    pulses: Some(30_000),
                    flipped: true,
                },
                SweepPoint {
                    parameter: 100.0,
                    label: "100 ns".into(),
                    pulses: None,
                    flipped: false,
                },
            ],
        }
    }

    #[test]
    fn series_table_includes_budget_misses() {
        let table = series_table(&series(), "pulse length");
        let text = table.to_string();
        assert!(text.contains("30000"));
        assert!(text.contains("no flip within budget"));
    }

    #[test]
    fn quick_setup_uses_synthetic_coupling() {
        let setup = figure_setup(true);
        assert!(matches!(
            setup.coupling,
            neurohammer::CouplingSource::Uniform { .. }
        ));
        let full = figure_setup(false);
        assert!(matches!(full.coupling, neurohammer::CouplingSource::Fem { .. }));
    }
}
