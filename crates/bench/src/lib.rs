//! Shared helpers for the figure-regeneration binaries and Criterion
//! benchmarks of the NeuroHammer reproduction.
//!
//! Each binary in `src/bin/` regenerates one table/figure of the paper and
//! prints it as a plain-text table plus a log-scale ASCII chart. The sweep
//! binaries are driven by declarative [`CampaignSpec`]s: each builds its
//! default grid, optionally replaced by `--campaign <spec.json>` (so a
//! figure can be re-run with a different grid without recompiling), runs it
//! in parallel and renders the resulting [`CampaignReport`].
//!
//! Campaigns execute through the streaming
//! [`neurohammer::campaign::CampaignExecutor`] (see
//! [`run_figure_campaign`]): points are reported on a live progress line as
//! they finish, optionally checkpointed to disk, and the grid can be split
//! across processes/machines with `--shard` and recombined with `--merge`.
//!
//! Common flags understood by all binaries:
//!
//! * `--quick` (or the `NEUROHAMMER_QUICK` environment variable) — synthetic
//!   coupling coefficients and smaller budgets, for CI-grade runs;
//! * `--campaign <path>` — load the campaign grid from a JSON spec file;
//! * `--csv` — additionally print the raw campaign results as CSV;
//! * `--spec` — print the executed campaign spec as JSON (for archiving);
//! * `--shard <i/n>` — run only every `n`-th grid point starting at `i`
//!   (round-robin), for splitting a grid across processes or machines;
//! * `--checkpoint <path>` — append each finished point to a JSONL file as
//!   it completes, so an interrupted run keeps its progress;
//! * `--resume` — replay the outcomes already recorded in the
//!   `--checkpoint` file instead of re-running them;
//! * `--merge <path>...` — skip execution entirely: read the given
//!   checkpoint files, merge them (de-duplicating by point key, restoring
//!   grid order) and render the combined report;
//! * `--alpha-cache <dir>` — persist FEM α-matrix extractions to a
//!   versioned on-disk cache in `<dir>`, so repeated campaign *processes*
//!   skip the field solve (defaults to the `--checkpoint` directory when
//!   checkpointing);
//! * `--tui` — redraw a live ANSI dashboard (per-series sweep sparklines,
//!   defence Pareto front, throughput) on stderr as points finish; needs
//!   stderr to be a terminal;
//! * `--html <path>` — additionally export the finished report as one
//!   self-contained HTML file (inline SVG charts, campaign fingerprint,
//!   deterministic telemetry snapshot), byte-reproducible per spec.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod observe;
pub mod worker;

use std::path::PathBuf;

use neurohammer::campaign::{read_checkpoint, CampaignAxis, CampaignReport, CampaignSpec, Shard};
use neurohammer::{ExperimentSetup, SweepSeries};
use rram_analysis::ascii_plot::log_bar_chart;
use rram_analysis::{Report, Table};

/// Returns the experiment setup used by the figure binaries.
///
/// `quick` (set via the `NEUROHAMMER_QUICK` environment variable or the
/// `--quick` flag) switches to synthetic coupling coefficients and a smaller
/// pulse budget so a full regeneration finishes in a couple of minutes.
pub fn figure_setup(quick: bool) -> ExperimentSetup {
    if quick {
        ExperimentSetup {
            max_pulses: 1_500_000,
            batching: true,
            ..ExperimentSetup::quick()
        }
    } else {
        ExperimentSetup {
            // Pulse batching keeps the multi-point sweeps tractable; the
            // ablation binary quantifies its (small) bias against exact
            // pulse-by-pulse simulation.
            batching: true,
            ..ExperimentSetup::default()
        }
    }
}

/// Base campaign grid shared by the figure binaries: the paper's 5×5 array,
/// single-aggressor pattern, V_SET amplitude, 50 nm spacing and 300 K — with
/// FEM-extracted coupling at full fidelity, or synthetic coupling and a
/// smaller budget in quick mode.
pub fn figure_campaign(quick: bool) -> CampaignSpec {
    if quick {
        CampaignSpec {
            coupling: neurohammer::CouplingSpec::Uniform { nearest: 0.15 },
            max_pulses: 1_500_000,
            batching: true,
            ..CampaignSpec::default()
        }
    } else {
        CampaignSpec {
            coupling: neurohammer::CouplingSpec::Fem { voxel_nm: 10.0 },
            max_pulses: 3_000_000,
            batching: true,
            ..CampaignSpec::default()
        }
    }
}

/// Reads the `--quick` flag / `NEUROHAMMER_QUICK` environment variable.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("NEUROHAMMER_QUICK").is_some()
}

/// Reads the `--csv` flag.
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Reads the `--spec` flag.
pub fn spec_requested() -> bool {
    std::env::args().any(|a| a == "--spec")
}

/// Reads the `--json` flag: the figure binaries print the full campaign
/// report as JSON instead of the rendered figure. Every float is bit-exact
/// in that form, so the CI reproducibility smoke jobs diff two such runs
/// and demand an empty diff.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints the bit-exact campaign-report JSON and returns `true` when
/// `--json` was passed; the figure binaries early-return on it instead of
/// rendering their figure.
pub fn maybe_print_report_json(report: &CampaignReport) -> bool {
    if json_requested() {
        println!("{}", report.to_json());
        return true;
    }
    false
}

/// Returns the value following `flag`, rejecting a missing value or one
/// that is itself a `--flag` token (a forgotten argument).
pub(crate) fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let flag_index = args.iter().position(|a| a == flag)?;
    let value = args
        .get(flag_index + 1)
        .filter(|value| !value.starts_with("--"))
        .unwrap_or_else(|| panic!("{flag} requires a value argument"));
    Some(value.clone())
}

/// Reads the `--shard i/n` flag.
///
/// # Panics
///
/// Panics when the selector is missing, malformed or out of range (these
/// binaries are command-line tools).
pub fn shard_requested() -> Option<Shard> {
    let selector = flag_value("--shard")?;
    Some(Shard::parse(&selector).unwrap_or_else(|e| panic!("invalid --shard {selector:?}: {e}")))
}

/// Reads the `--checkpoint <path>` flag.
///
/// # Panics
///
/// Panics when the flag has no path argument.
pub fn checkpoint_requested() -> Option<PathBuf> {
    flag_value("--checkpoint").map(PathBuf::from)
}

/// Reads the `--alpha-cache <dir>` flag: the directory of the on-disk
/// α-matrix cache. When absent but `--checkpoint` is given, the cache
/// lives next to the checkpoint file, so a resumed FEM campaign skips its
/// field solves along with its finished points.
///
/// # Panics
///
/// Panics when the flag has no directory argument.
pub fn alpha_cache_requested() -> Option<PathBuf> {
    flag_value("--alpha-cache").map(PathBuf::from).or_else(|| {
        checkpoint_requested().map(|checkpoint| {
            checkpoint
                .parent()
                .filter(|dir| !dir.as_os_str().is_empty())
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("."))
        })
    })
}

/// Reads the `--resume` flag.
pub fn resume_requested() -> bool {
    std::env::args().any(|a| a == "--resume")
}

/// Reads the `--merge <path>...` flag: every argument following `--merge`
/// up to the next `--flag` is a checkpoint file to combine. `None` when the
/// flag is absent.
///
/// # Panics
///
/// Panics when `--merge` is present with no paths (a forgotten argument
/// must not silently fall through to a full, possibly hours-long run).
pub fn merge_requested() -> Option<Vec<PathBuf>> {
    let args: Vec<String> = std::env::args().collect();
    let flag_index = args.iter().position(|a| a == "--merge")?;
    let paths: Vec<PathBuf> = args[flag_index + 1..]
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .collect();
    assert!(
        !paths.is_empty(),
        "--merge requires at least one checkpoint path"
    );
    Some(paths)
}

/// Executes a figure campaign through the streaming executor, honouring the
/// `--shard`, `--checkpoint`, `--resume`, `--merge`, `--tui` and `--html`
/// flags, and renders a live progress line on stderr as points finish.
/// `axis` names the sweep the figure slices its series over — the live
/// `--tui` dashboard and the `--html` export group by it.
///
/// With `--merge <path>...` nothing is executed: the checkpoint files are
/// read, de-duplicated by point key and re-sorted into grid order, so a
/// merged report covering the full grid (and its CSV) is byte-identical to
/// an unsharded run. Outcomes that do not belong to this binary's grid are
/// rejected, and an incomplete merge (a forgotten shard file) renders with
/// a loud warning. Without `--resume`, `--checkpoint` starts the file from
/// scratch; with it, recovered points replay and the file is appended.
///
/// # Panics
///
/// Panics on an invalid spec, an unreadable or foreign checkpoint, or an
/// execution failure (these binaries are command-line tools).
pub fn run_figure_campaign(spec: CampaignSpec, axis: CampaignAxis) -> CampaignReport {
    if let Some(merge) = merge_requested() {
        let report = worker::merge_checkpoints(&spec, &merge)
            .unwrap_or_else(|e| panic!("cannot merge checkpoints: {e}"));
        observe::maybe_write_html(&spec.name.clone(), &spec, &report, axis);
        return report;
    }

    let checkpoint = checkpoint_requested();
    let resume = resume_requested();
    let mut recovered = Vec::new();
    if resume {
        let path = checkpoint
            .as_ref()
            .expect("--resume requires --checkpoint <path>");
        if path.exists() {
            recovered = read_checkpoint(path)
                .unwrap_or_else(|e| panic!("cannot read checkpoint {path:?}: {e}"));
        }
    }
    // A fresh (non-resume) run starts its checkpoint from scratch so stale
    // outcomes from an earlier run cannot shadow the new ones on later
    // reads; a resumed run appends (the reader de-duplicates by key).
    let mut tui = observe::TuiDriver::from_flags(&spec.name, axis);
    let options = worker::RunOptions {
        shard: shard_requested().unwrap_or_default(),
        resume: recovered,
        checkpoint: checkpoint.map(|path| worker::CheckpointSink {
            path,
            append: resume,
        }),
        alpha_cache: alpha_cache_requested(),
        // The dashboard owns the terminal while --tui is active; the plain
        // progress line would fight its in-place redraw.
        progress: tui.is_none(),
    };
    let report = worker::execute_shard(spec.clone(), options, |event| {
        if let Some(driver) = tui.as_mut() {
            driver.observe(event);
        }
    })
    .unwrap_or_else(|e| panic!("campaign failed: {e}"));
    if let Some(driver) = tui {
        driver.finish();
    }
    observe::maybe_write_html(&spec.name, &spec, &report, axis);
    report
}

/// Returns the campaign spec from `--campaign <path>` when given, otherwise
/// the binary's `default_spec`. Parse/IO failures abort with a message (these
/// binaries are command-line tools).
///
/// # Panics
///
/// Panics when the spec file cannot be read or parsed, or when `--campaign`
/// has no path argument.
pub fn resolve_campaign(default_spec: CampaignSpec) -> CampaignSpec {
    let args: Vec<String> = std::env::args().collect();
    let Some(flag_index) = args.iter().position(|a| a == "--campaign") else {
        return default_spec;
    };
    let path = args
        .get(flag_index + 1)
        .expect("--campaign requires a path argument");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read campaign spec {path:?}: {e}"));
    CampaignSpec::from_json(&text)
        .unwrap_or_else(|e| panic!("cannot parse campaign spec {path:?}: {e}"))
}

/// Renders a campaign report as the standard figure output: one section per
/// series over `axis` (a table plus a log-scale pulse-count chart), honouring
/// the `--csv` flag.
pub fn campaign_figure(title: &str, report: &CampaignReport, axis: CampaignAxis) -> Report {
    let mut rendered = Report::new(title);
    for series in report.series_over(axis) {
        rendered.section(&series.name);
        rendered.push(series_table(&series, "parameter").to_string());
        let bars: Vec<(String, f64)> = series
            .points
            .iter()
            .filter_map(|p| p.pulses.map(|n| (p.label.clone(), n as f64)))
            .collect();
        if let Some(chart) = log_bar_chart(&bars, 50) {
            rendered.push(chart);
        }
    }
    if csv_requested() {
        rendered.section("CSV");
        rendered.push(report.to_csv_string());
    }
    rendered
}

/// Prints the executed spec as JSON when `--spec` was passed.
pub fn maybe_print_spec(spec: &CampaignSpec) {
    if spec_requested() {
        println!("\n## Campaign spec\n{}", spec.to_json());
    }
}

/// Formats a sweep series as a table with one row per point.
pub fn series_table(series: &SweepSeries, parameter_name: &str) -> Table {
    let mut table = Table::with_headers(&[parameter_name, "# pulses to trigger a bit-flip"]);
    for point in &series.points {
        let pulses = point
            .pulses
            .map(|p| p.to_string())
            .unwrap_or_else(|| "no flip within budget".to_string());
        table.push_row(vec![point.label.clone(), pulses]);
    }
    table
}

/// Prints a series as a table followed by a log-scale bar chart.
pub fn print_series(series: &SweepSeries, parameter_name: &str) {
    println!("## {}", series.name);
    println!("{}", series_table(series, parameter_name));
    let bars: Vec<(String, f64)> = series
        .points
        .iter()
        .filter_map(|p| p.pulses.map(|n| (p.label.clone(), n as f64)))
        .collect();
    if let Some(chart) = log_bar_chart(&bars, 50) {
        println!("{chart}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurohammer::SweepPoint;

    fn series() -> SweepSeries {
        SweepSeries {
            name: "demo".into(),
            points: vec![
                SweepPoint {
                    parameter: 10.0,
                    label: "10 ns".into(),
                    pulses: Some(30_000),
                    flipped: true,
                },
                SweepPoint {
                    parameter: 100.0,
                    label: "100 ns".into(),
                    pulses: None,
                    flipped: false,
                },
            ],
        }
    }

    #[test]
    fn series_table_includes_budget_misses() {
        let table = series_table(&series(), "pulse length");
        let text = table.to_string();
        assert!(text.contains("30000"));
        assert!(text.contains("no flip within budget"));
    }

    #[test]
    fn quick_setup_uses_synthetic_coupling() {
        let setup = figure_setup(true);
        assert!(matches!(
            setup.coupling,
            neurohammer::CouplingSource::Uniform { .. }
        ));
        let full = figure_setup(false);
        assert!(matches!(
            full.coupling,
            neurohammer::CouplingSource::Fem { .. }
        ));
    }
}
