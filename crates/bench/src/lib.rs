//! Shared helpers for the figure-regeneration binaries and Criterion
//! benchmarks of the NeuroHammer reproduction.
//!
//! Each binary in `src/bin/` regenerates one table/figure of the paper and
//! prints it as a plain-text table plus a log-scale ASCII chart. The sweep
//! binaries are driven by declarative [`CampaignSpec`]s: each builds its
//! default grid, optionally replaced by `--campaign <spec.json>` (so a
//! figure can be re-run with a different grid without recompiling), runs it
//! in parallel and renders the resulting [`CampaignReport`].
//!
//! Common flags understood by all binaries:
//!
//! * `--quick` (or the `NEUROHAMMER_QUICK` environment variable) — synthetic
//!   coupling coefficients and smaller budgets, for CI-grade runs;
//! * `--campaign <path>` — load the campaign grid from a JSON spec file;
//! * `--csv` — additionally print the raw campaign results as CSV;
//! * `--spec` — print the executed campaign spec as JSON (for archiving).

#![deny(missing_docs)]
#![deny(unsafe_code)]

use neurohammer::campaign::{CampaignAxis, CampaignReport, CampaignSpec};
use neurohammer::{ExperimentSetup, SweepSeries};
use rram_analysis::ascii_plot::log_bar_chart;
use rram_analysis::{Report, Table};

/// Returns the experiment setup used by the figure binaries.
///
/// `quick` (set via the `NEUROHAMMER_QUICK` environment variable or the
/// `--quick` flag) switches to synthetic coupling coefficients and a smaller
/// pulse budget so a full regeneration finishes in a couple of minutes.
pub fn figure_setup(quick: bool) -> ExperimentSetup {
    if quick {
        ExperimentSetup {
            max_pulses: 1_500_000,
            batching: true,
            ..ExperimentSetup::quick()
        }
    } else {
        ExperimentSetup {
            // Pulse batching keeps the multi-point sweeps tractable; the
            // ablation binary quantifies its (small) bias against exact
            // pulse-by-pulse simulation.
            batching: true,
            ..ExperimentSetup::default()
        }
    }
}

/// Base campaign grid shared by the figure binaries: the paper's 5×5 array,
/// single-aggressor pattern, V_SET amplitude, 50 nm spacing and 300 K — with
/// FEM-extracted coupling at full fidelity, or synthetic coupling and a
/// smaller budget in quick mode.
pub fn figure_campaign(quick: bool) -> CampaignSpec {
    if quick {
        CampaignSpec {
            coupling: neurohammer::CouplingSpec::Uniform { nearest: 0.15 },
            max_pulses: 1_500_000,
            batching: true,
            ..CampaignSpec::default()
        }
    } else {
        CampaignSpec {
            coupling: neurohammer::CouplingSpec::Fem { voxel_nm: 10.0 },
            max_pulses: 3_000_000,
            batching: true,
            ..CampaignSpec::default()
        }
    }
}

/// Reads the `--quick` flag / `NEUROHAMMER_QUICK` environment variable.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("NEUROHAMMER_QUICK").is_some()
}

/// Reads the `--csv` flag.
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Reads the `--spec` flag.
pub fn spec_requested() -> bool {
    std::env::args().any(|a| a == "--spec")
}

/// Returns the campaign spec from `--campaign <path>` when given, otherwise
/// the binary's `default_spec`. Parse/IO failures abort with a message (these
/// binaries are command-line tools).
///
/// # Panics
///
/// Panics when the spec file cannot be read or parsed, or when `--campaign`
/// has no path argument.
pub fn resolve_campaign(default_spec: CampaignSpec) -> CampaignSpec {
    let args: Vec<String> = std::env::args().collect();
    let Some(flag_index) = args.iter().position(|a| a == "--campaign") else {
        return default_spec;
    };
    let path = args
        .get(flag_index + 1)
        .expect("--campaign requires a path argument");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read campaign spec {path:?}: {e}"));
    CampaignSpec::from_json(&text)
        .unwrap_or_else(|e| panic!("cannot parse campaign spec {path:?}: {e}"))
}

/// Renders a campaign report as the standard figure output: one section per
/// series over `axis` (a table plus a log-scale pulse-count chart), honouring
/// the `--csv` flag.
pub fn campaign_figure(title: &str, report: &CampaignReport, axis: CampaignAxis) -> Report {
    let mut rendered = Report::new(title);
    for series in report.series_over(axis) {
        rendered.section(&series.name);
        rendered.push(series_table(&series, "parameter").to_string());
        let bars: Vec<(String, f64)> = series
            .points
            .iter()
            .filter_map(|p| p.pulses.map(|n| (p.label.clone(), n as f64)))
            .collect();
        if let Some(chart) = log_bar_chart(&bars, 50) {
            rendered.push(chart);
        }
    }
    if csv_requested() {
        rendered.section("CSV");
        rendered.push(report.to_csv_string());
    }
    rendered
}

/// Prints the executed spec as JSON when `--spec` was passed.
pub fn maybe_print_spec(spec: &CampaignSpec) {
    if spec_requested() {
        println!("\n## Campaign spec\n{}", spec.to_json());
    }
}

/// Formats a sweep series as a table with one row per point.
pub fn series_table(series: &SweepSeries, parameter_name: &str) -> Table {
    let mut table = Table::with_headers(&[parameter_name, "# pulses to trigger a bit-flip"]);
    for point in &series.points {
        let pulses = point
            .pulses
            .map(|p| p.to_string())
            .unwrap_or_else(|| "no flip within budget".to_string());
        table.push_row(vec![point.label.clone(), pulses]);
    }
    table
}

/// Prints a series as a table followed by a log-scale bar chart.
pub fn print_series(series: &SweepSeries, parameter_name: &str) {
    println!("## {}", series.name);
    println!("{}", series_table(series, parameter_name));
    let bars: Vec<(String, f64)> = series
        .points
        .iter()
        .filter_map(|p| p.pulses.map(|n| (p.label.clone(), n as f64)))
        .collect();
    if let Some(chart) = log_bar_chart(&bars, 50) {
        println!("{chart}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurohammer::SweepPoint;

    fn series() -> SweepSeries {
        SweepSeries {
            name: "demo".into(),
            points: vec![
                SweepPoint {
                    parameter: 10.0,
                    label: "10 ns".into(),
                    pulses: Some(30_000),
                    flipped: true,
                },
                SweepPoint {
                    parameter: 100.0,
                    label: "100 ns".into(),
                    pulses: None,
                    flipped: false,
                },
            ],
        }
    }

    #[test]
    fn series_table_includes_budget_misses() {
        let table = series_table(&series(), "pulse length");
        let text = table.to_string();
        assert!(text.contains("30000"));
        assert!(text.contains("no flip within budget"));
    }

    #[test]
    fn quick_setup_uses_synthetic_coupling() {
        let setup = figure_setup(true);
        assert!(matches!(
            setup.coupling,
            neurohammer::CouplingSource::Uniform { .. }
        ));
        let full = figure_setup(false);
        assert!(matches!(
            full.coupling,
            neurohammer::CouplingSource::Fem { .. }
        ));
    }
}
