//! Regenerates Fig. 3b: number of pulses to trigger a bit-flip vs. electrode
//! spacing (10/50/90 nm) for 50/75/100 ns pulses at 300 K — expressed as a
//! declarative campaign grid (the campaign runner extracts the thermal
//! coupling once per spacing and shares it across pulse lengths).
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig3b_electrode_spacing`.
//! Pass `--campaign <spec.json>` to run a custom grid, `--csv` for raw rows,
//! `--json` for the bit-exact report JSON instead of the figure,
//! `--spec` to print the executed grid as JSON, `--shard i/n`,
//! `--checkpoint <path>`, `--resume` and `--merge <path>...` for
//! distributed/resumable execution (see the crate docs).

use neurohammer::campaign::CampaignAxis;
use neurohammer::CouplingSpec;
use neurohammer_bench::{
    campaign_figure, figure_campaign, maybe_print_report_json, maybe_print_spec, quick_requested,
    resolve_campaign, run_figure_campaign,
};

fn main() {
    let quick = quick_requested();
    let mut spec = figure_campaign(quick);
    spec.name = "fig3b electrode spacing sweep (300 K)".into();
    // The spacing sweep needs the field solver to see the geometry; the voxel
    // size must resolve the smallest spacing (10 nm), so both profiles use
    // 10 nm voxels and the quick profile trims the pulse-length list instead.
    spec.coupling = CouplingSpec::Fem { voxel_nm: 10.0 };
    spec.spacings_nm = vec![10.0, 50.0, 90.0];
    spec.pulse_lengths_ns = if quick {
        vec![50.0, 100.0]
    } else {
        vec![50.0, 75.0, 100.0]
    };
    let spec = resolve_campaign(spec);

    let report = run_figure_campaign(spec.clone(), CampaignAxis::Spacing);
    if maybe_print_report_json(&report) {
        return;
    }
    println!(
        "{}",
        campaign_figure(
            "Fig. 3b — impact of the electrode spacing (300 K)",
            &report,
            CampaignAxis::Spacing,
        )
    );
    for series in report.series_over(CampaignAxis::Spacing) {
        println!(
            "{}: monotonically increasing with spacing: {}",
            series.name,
            series.is_monotonically_increasing()
        );
    }
    maybe_print_spec(&spec);
}
