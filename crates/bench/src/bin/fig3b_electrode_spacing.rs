//! Regenerates Fig. 3b: number of pulses to trigger a bit-flip vs. electrode
//! spacing (10/50/90 nm) for 50/75/100 ns pulses at 300 K.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig3b_electrode_spacing`.

use neurohammer::fig3b_electrode_spacing;
use neurohammer_bench::{figure_setup, print_series, quick_requested};

fn main() {
    let quick = quick_requested();
    let mut setup = figure_setup(quick);
    // The spacing sweep needs the field solver to see the geometry; the voxel
    // size must resolve the smallest spacing (10 nm), so both profiles use
    // 10 nm voxels and the quick profile trims the pulse-length list instead.
    setup.coupling = neurohammer::CouplingSource::Fem { voxel_nm: 10.0 };
    let lengths: Vec<f64> = if quick { vec![50.0, 100.0] } else { vec![50.0, 75.0, 100.0] };
    let series = fig3b_electrode_spacing(&setup, &[10.0, 50.0, 90.0], &lengths)
        .expect("fig3b failed");
    println!("# Fig. 3b — impact of the electrode spacing (300 K)");
    for s in &series {
        print_series(s, "electrode spacing");
        println!(
            "monotonically increasing with spacing: {}\n",
            s.is_monotonically_increasing()
        );
    }
}
