//! Maps the attack-success probability surface under device-to-device
//! variability: spread σ × hammer amplitude, Monte Carlo over seeded
//! per-cell parameter samples on the batched backend.
//!
//! The paper's disturb margins (Figs. 3a–d) are single-device numbers;
//! with realistic filament-radius and disc-length spreads the hammer count
//! to flip becomes a *distribution*, and attack success a probability.
//! For every spread σ this binary runs one seeded Monte Carlo campaign
//! (`trials` sampled device arrays per amplitude) and reports, per
//! (σ, amplitude) cell: the flip probability with its 95 % Wilson interval
//! and the p5/p50/p95 hammer counts over the flipped trials.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig_variability`.
//! Flags: `--quick` (small grid, synthetic coupling), `--csv` (raw
//! per-trial rows and statistics as CSV), `--json` (machine-readable
//! statistics + full reports, for determinism diffing), `--spec` (print
//! the executed campaign specs), `--tui` (live amplitude-axis dashboard
//! per σ campaign; needs a terminal on stderr).

use neurohammer::campaign::{CampaignAxis, CampaignReport, CampaignSpec};
use neurohammer_bench::worker::{execute_shard, RunOptions};
use neurohammer_bench::{csv_requested, figure_campaign, observe, quick_requested, spec_requested};
use rram_analysis::Table;
use rram_crossbar::BackendKind;
use rram_jart::DeviceParams;
use rram_variability::{ParamField, ParamSpread};

/// The master seed of the figure: fixed so the published surface is
/// reproducible bit for bit.
const SEED: u64 = 42;

/// Builds the Monte Carlo campaign of one spread σ (a *relative* sigma
/// applied to the filament radius and the disc length — the two dominant
/// spreads in VCM variability studies).
fn sigma_campaign(sigma: f64, quick: bool) -> CampaignSpec {
    let nominal = DeviceParams::default();
    let mut spec = figure_campaign(quick);
    spec.name = format!("variability sigma={sigma}");
    spec.backends = vec![BackendKind::Batched];
    spec.amplitudes_v = if quick {
        vec![1.05]
    } else {
        vec![0.95, 1.05, 1.15]
    };
    spec.max_pulses = if quick { 200_000 } else { 3_000_000 };
    spec.seed = SEED;
    if sigma == 0.0 {
        // The σ = 0 baseline is deterministic: every trial would sample
        // the identical nominal device, so one trial carries the whole row.
        spec.trials = 1;
        spec.spreads = Vec::new();
    } else {
        spec.trials = if quick { 4 } else { 24 };
        spec.spreads = vec![
            ParamSpread::relative_normal(ParamField::FilamentRadius, sigma, &nominal),
            ParamSpread::relative_normal(ParamField::LDisc, sigma, &nominal),
        ];
    }
    spec
}

/// Runs one σ's campaign through the shared runner: TTY-aware progress on
/// stderr, or — under `--tui` — a per-σ live dashboard over the amplitude
/// axis.
fn run_with_progress(spec: CampaignSpec) -> CampaignReport {
    let mut tui = observe::TuiDriver::from_flags(&spec.name, CampaignAxis::Amplitude);
    let options = RunOptions {
        progress: tui.is_none(),
        ..Default::default()
    };
    let report = execute_shard(spec, options, |event| {
        if let Some(driver) = tui.as_mut() {
            driver.observe(event);
        }
    })
    .unwrap_or_else(|e| panic!("campaign failed: {e}"));
    if let Some(driver) = tui {
        driver.finish();
    }
    report
}

fn main() {
    let quick = quick_requested();
    let json = std::env::args().any(|a| a == "--json");
    let sigmas: Vec<f64> = if quick {
        vec![0.02, 0.08]
    } else {
        vec![0.0, 0.02, 0.05, 0.10, 0.20]
    };

    let runs: Vec<(f64, CampaignSpec, CampaignReport)> = sigmas
        .iter()
        .map(|&sigma| {
            let spec = sigma_campaign(sigma, quick);
            let report = run_with_progress(spec.clone());
            (sigma, spec, report)
        })
        .collect();

    if json {
        // Machine-readable form: one entry per σ with the collapsed
        // statistics and the full per-trial report — every float bit-exact,
        // so two runs of the same seed diff empty.
        let entries: Vec<String> = runs
            .iter()
            .map(|(sigma, _, report)| {
                format!(
                    "{{\"sigma\": {sigma}, \"stats\": {}, \"report\": {}}}",
                    report.variability_json(),
                    report.to_json()
                )
            })
            .collect();
        println!("[{}]", entries.join(",\n"));
        return;
    }

    println!("# Variability — attack-success probability vs spread σ\n");
    for (sigma, spec, report) in &runs {
        println!(
            "## σ = {:.0}% (relative, filament radius + disc length)",
            sigma * 100.0
        );
        println!("{}", report.variability_table());
        if csv_requested() {
            println!("### statistics CSV\n{}", report.variability_csv());
            println!("### per-trial CSV\n{}", report.to_csv_string());
        }
        if spec_requested() {
            println!("### campaign spec\n{}", spec.to_json());
        }
    }

    // The probability surface: one row per σ, one column per amplitude.
    let amplitudes = &runs[0].1.amplitudes_v;
    let mut headers: Vec<String> = vec!["σ \\ amplitude".into()];
    headers.extend(amplitudes.iter().map(|a| format!("{a:.2} V")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut surface = Table::with_headers(&header_refs);
    for (sigma, _, report) in &runs {
        let mut row = vec![format!("{:.0}%", sigma * 100.0)];
        for group in report.variability_groups() {
            row.push(format!(
                "P={:.2} [{:.2},{:.2}] p50={}",
                group.flip_probability,
                group.wilson_low,
                group.wilson_high,
                group
                    .pulses_p50
                    .map_or_else(|| "—".into(), |p| format!("{p:.0}")),
            ));
        }
        surface.push_row(row);
    }
    println!("## Probability surface (P(flip) [95% Wilson] and median pulses)\n{surface}");
}
