//! Regenerates Fig. 3c: number of pulses to trigger a bit-flip vs. ambient
//! temperature (273–373 K) for 10/30/50 ns pulses at 50 nm spacing —
//! expressed as a declarative campaign grid.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig3c_ambient_temperature`.
//! Pass `--campaign <spec.json>` to run a custom grid, `--csv` for raw rows,
//! `--json` for the bit-exact report JSON instead of the figure,
//! `--spec` to print the executed grid as JSON, `--shard i/n`,
//! `--checkpoint <path>`, `--resume` and `--merge <path>...` for
//! distributed/resumable execution (see the crate docs).

use neurohammer::campaign::CampaignAxis;
use neurohammer_bench::{
    campaign_figure, figure_campaign, maybe_print_report_json, maybe_print_spec, quick_requested,
    resolve_campaign, run_figure_campaign,
};

fn main() {
    let quick = quick_requested();
    let mut spec = figure_campaign(quick);
    spec.name = "fig3c ambient temperature sweep (50 nm)".into();
    spec.ambients_k = vec![273.0, 298.0, 323.0, 348.0, 373.0];
    spec.pulse_lengths_ns = if quick {
        vec![50.0]
    } else {
        vec![10.0, 30.0, 50.0]
    };
    let spec = resolve_campaign(spec);

    let report = run_figure_campaign(spec.clone(), CampaignAxis::Ambient);
    if maybe_print_report_json(&report) {
        return;
    }
    println!(
        "{}",
        campaign_figure(
            "Fig. 3c — impact of the ambient temperature (50 nm spacing)",
            &report,
            CampaignAxis::Ambient,
        )
    );
    for series in report.series_over(CampaignAxis::Ambient) {
        println!(
            "{}: monotonically decreasing with temperature: {} | 273 K / 373 K ratio: {:.1}",
            series.name,
            series.is_monotonically_decreasing(),
            series.endpoint_ratio().unwrap_or(f64::NAN)
        );
    }
    maybe_print_spec(&spec);
}
