//! Regenerates Fig. 3c: number of pulses to trigger a bit-flip vs. ambient
//! temperature (273–373 K) for 10/30/50 ns pulses at 50 nm spacing.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig3c_ambient_temperature`.

use neurohammer::fig3c_ambient_temperature;
use neurohammer_bench::{figure_setup, print_series, quick_requested};

fn main() {
    let quick = quick_requested();
    let setup = figure_setup(quick);
    let ambients = [273.0, 298.0, 323.0, 348.0, 373.0];
    let lengths: Vec<f64> = if quick { vec![50.0] } else { vec![10.0, 30.0, 50.0] };
    let series = fig3c_ambient_temperature(&setup, &ambients, &lengths).expect("fig3c failed");
    println!("# Fig. 3c — impact of the ambient temperature (50 nm spacing)");
    for s in &series {
        print_series(s, "ambient temperature");
        println!(
            "monotonically decreasing with temperature: {} | 273 K / 373 K ratio: {:.1}\n",
            s.is_monotonically_decreasing(),
            s.endpoint_ratio().unwrap_or(f64::NAN)
        );
    }
}
