//! Maps the defence/overhead Pareto surface of the modelled NeuroHammer
//! countermeasures: guard kind × threshold × hammer amplitude (× spread σ ×
//! Monte Carlo trials), aggregated into protection probabilities with 95 %
//! Wilson intervals and the non-dominated (protection, overhead) front.
//!
//! The paper's countermeasures are future work; this figure answers the
//! question that section poses — *what does stopping NeuroHammer cost?* —
//! by sweeping each defence family's operating point against the attack
//! grid and a benign write workload (false-trigger/overhead accounting).
//! With spreads in the campaign, the σ axis makes the tuning
//! variability-aware: the Wilson intervals show how confidently each
//! guard's protection probability is known across sampled device
//! populations.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig_defense`.
//! Flags: the standard campaign set (`--quick`, `--campaign <spec.json>`,
//! `--csv`, `--spec`, `--shard i/n`, `--checkpoint <path>`, `--resume`,
//! `--merge <path>...`) plus `--json` for the machine-readable, bit-exact
//! form (defence statistics + Pareto front + full report) that CI diffs
//! for determinism.

use neurohammer::campaign::{CampaignAxis, CampaignSpec};
use neurohammer_bench::{
    csv_requested, figure_campaign, maybe_print_spec, quick_requested, resolve_campaign,
    run_figure_campaign,
};
use rram_crossbar::BackendKind;
use rram_defense::GuardSpec;
use rram_jart::DeviceParams;
use rram_units::{Kelvin, Seconds};
use rram_variability::{ParamField, ParamSpread};

/// The master seed of the figure: fixed so the published surface is
/// reproducible bit for bit.
const SEED: u64 = 42;

/// The default defence campaign: every guard family over a threshold sweep,
/// against the paper's 5×5 single-aggressor attack at several amplitudes,
/// under a σ axis of device spreads (filament radius + disc length, the two
/// dominant VCM spreads).
fn defense_campaign(quick: bool) -> CampaignSpec {
    let nominal = DeviceParams::default();
    let mut spec = figure_campaign(quick);
    spec.name = "defense pareto".into();
    spec.backends = vec![BackendKind::Batched];
    spec.seed = SEED;
    // Guarded points simulate pulse by pulse; batching only affects the
    // unguarded baseline, which stays exact too so the comparison is fair.
    spec.batching = false;
    spec.pulse_lengths_ns = vec![100.0];
    // The base spreads carry a *relative* σ of 1.0, so the σ axis values
    // are directly the relative spread magnitudes (0 = nominal device).
    spec.spreads = vec![
        ParamSpread::relative_normal(ParamField::FilamentRadius, 1.0, &nominal),
        ParamSpread::relative_normal(ParamField::LDisc, 1.0, &nominal),
    ];
    if quick {
        spec.amplitudes_v = vec![1.05];
        spec.guards = vec![
            GuardSpec::None,
            GuardSpec::WriteCounter {
                threshold: 32,
                window: Seconds(1.0),
            },
            GuardSpec::WriteCounter {
                threshold: 256,
                window: Seconds(1.0),
            },
            GuardSpec::ThermalSensor {
                threshold: Kelvin(15.0),
                cooldown: Seconds(1e-6),
            },
            GuardSpec::Scrubbing {
                period: Seconds(2e-6),
            },
        ];
        spec.spread_scales = vec![0.0, 0.1];
        spec.trials = 2;
        spec.max_pulses = 20_000;
        spec.benign_writes = 64;
    } else {
        spec.amplitudes_v = vec![0.95, 1.05, 1.15];
        spec.guards = vec![
            GuardSpec::None,
            GuardSpec::WriteCounter {
                threshold: 32,
                window: Seconds(1.0),
            },
            GuardSpec::WriteCounter {
                threshold: 128,
                window: Seconds(1.0),
            },
            GuardSpec::WriteCounter {
                threshold: 512,
                window: Seconds(1.0),
            },
            GuardSpec::ThermalSensor {
                threshold: Kelvin(10.0),
                cooldown: Seconds(1e-6),
            },
            GuardSpec::ThermalSensor {
                threshold: Kelvin(20.0),
                cooldown: Seconds(1e-6),
            },
            GuardSpec::ThermalSensor {
                threshold: Kelvin(40.0),
                cooldown: Seconds(1e-6),
            },
            GuardSpec::Scrubbing {
                period: Seconds(1e-6),
            },
            GuardSpec::Scrubbing {
                period: Seconds(5e-6),
            },
            GuardSpec::Scrubbing {
                period: Seconds(20e-6),
            },
        ];
        spec.spread_scales = vec![0.0, 0.05, 0.1, 0.2];
        spec.trials = 12;
        spec.max_pulses = 300_000;
        spec.benign_writes = 256;
    }
    spec
}

fn main() {
    let quick = quick_requested();
    let json = std::env::args().any(|a| a == "--json");
    let spec = resolve_campaign(defense_campaign(quick));
    let report = run_figure_campaign(spec.clone(), CampaignAxis::Guard);

    if json {
        // Machine-readable form: the spec, the collapsed defence statistics
        // (groups + Pareto front) and the full per-point report — every
        // float bit-exact, so two runs of the same seed diff empty.
        println!(
            "{{\"spec\": {},\n\"defense\": {},\n\"report\": {}}}",
            spec.to_json(),
            report.defense_json(),
            report.to_json()
        );
        return;
    }

    println!("# Defence campaigns — guard sweeps vs NeuroHammer\n");
    println!(
        "## Per-point protection statistics (trials collapsed)\n{}",
        report.defense_table()
    );
    println!(
        "## Defence/overhead Pareto front (front members marked *)\n{}",
        report.pareto_table()
    );
    if csv_requested() {
        println!("## Pareto CSV\n{}", report.pareto_csv());
        println!("## Per-point CSV\n{}", report.to_csv_string());
    }
    maybe_print_spec(&spec);
}
