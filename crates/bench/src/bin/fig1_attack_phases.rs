//! Regenerates the Fig. 1 trace: the four phases of a NeuroHammer attack
//! (hammering, temperature increase, changed switching kinetics, bit-flip).
//!
//! The attack is described by a single-point campaign spec executed through
//! the streaming campaign runner (so the binary understands the same
//! `--campaign`/`--spec`/`--shard`/`--checkpoint`/`--resume`/`--merge`
//! flags as the other figures); the binary then rebuilds the first reported
//! point's backend, re-runs it with pulse-level tracing enabled and renders
//! the phase trace. The trace itself always runs locally — it *is* the
//! figure — and is skipped only when `--shard` leaves this process without
//! the point.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig1_attack_phases`.
//! Pass `--campaign <spec.json>` to trace a different grid point, `--json`
//! for the bit-exact report JSON instead of the trace, `--spec` to print
//! the executed spec as JSON.

use neurohammer::campaign::CampaignAxis;
use neurohammer::run_attack;
use neurohammer_bench::{
    figure_campaign, maybe_print_report_json, maybe_print_spec, quick_requested, resolve_campaign,
    run_figure_campaign,
};
use rram_analysis::ascii_plot::sparkline;

fn main() {
    let mut spec = figure_campaign(quick_requested());
    spec.name = "fig1 attack phase trace (50 ns, 50 nm, 300 K)".into();
    let spec = resolve_campaign(spec);
    let report = run_figure_campaign(spec.clone(), CampaignAxis::PulseLength);
    if maybe_print_report_json(&report) {
        return;
    }

    println!("# Fig. 1 — NeuroHammer attack phases (50 ns pulses, 50 nm spacing, 300 K)");
    let Some(outcome) = report.outcomes.first() else {
        // An empty shard slice: nothing to trace in this process.
        println!("no grid point assigned to this shard");
        maybe_print_spec(&spec);
        return;
    };
    let point = outcome.point;

    let mut backend = spec.backend_for(&point).expect("backend build failed");
    let mut config = spec.attack_config(&point);
    config.trace = true;
    config.batching = false;
    let result = run_attack(backend.as_mut(), &config);

    println!("backend: {}", point.backend.label());
    println!(
        "bit-flip after {} pulses ({:.3e} s of attack time)\n",
        result.pulses, result.elapsed.0
    );

    let sample = |f: &dyn Fn(&neurohammer::TracePoint) -> f64| -> Vec<f64> {
        // Down-sample the trace to at most 60 points for the sparkline.
        let stride = (result.trace.len() / 60).max(1);
        result.trace.iter().step_by(stride).map(f).collect()
    };
    println!(
        "aggressor temperature [K]: {}",
        sparkline(&sample(&|p| p.aggressor_temperature.0)).unwrap_or_default()
    );
    println!(
        "victim temperature    [K]: {}",
        sparkline(&sample(&|p| p.victim_temperature.0)).unwrap_or_default()
    );
    println!(
        "victim crosstalk ΔT   [K]: {}",
        sparkline(&sample(&|p| p.victim_crosstalk.0)).unwrap_or_default()
    );
    println!(
        "victim state     [0..1]  : {}",
        sparkline(&sample(&|p| p.victim_state)).unwrap_or_default()
    );

    println!(
        "\n{:>8} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "pulse", "time [s]", "T_aggr [K]", "T_vict [K]", "ΔT_xt [K]", "state"
    );
    let stride = (result.trace.len() / 12).max(1);
    for point in result.trace.iter().step_by(stride) {
        println!(
            "{:>8} {:>12.3e} {:>10.1} {:>10.1} {:>10.1} {:>8.3}",
            point.pulses,
            point.time.0,
            point.aggressor_temperature.0,
            point.victim_temperature.0,
            point.victim_crosstalk.0,
            point.victim_state
        );
    }
    if let Some(last) = result.trace.last() {
        println!(
            "{:>8} {:>12.3e} {:>10.1} {:>10.1} {:>10.1} {:>8.3}",
            last.pulses,
            last.time.0,
            last.aggressor_temperature.0,
            last.victim_temperature.0,
            last.victim_crosstalk.0,
            last.victim_state
        );
    }
    maybe_print_spec(&spec);
}
