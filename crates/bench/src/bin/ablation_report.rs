//! Ablation study over the design choices of the reproduction:
//! crosstalk hub on/off, thermal time constant, pulse batching, the
//! closed-form estimator vs. the simulation — plus a cross-backend agreement
//! campaign that runs the same short burst through the fast pulse engine and
//! the MNA-backed detailed engine.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin ablation_report`.

use neurohammer::ablation_report;
use neurohammer::campaign::{CampaignAxis, CampaignSpec};
use neurohammer_bench::{figure_setup, quick_requested, resolve_campaign, run_figure_campaign};
use rram_analysis::{Report, Table};
use rram_crossbar::BackendKind;

fn main() {
    let setup = figure_setup(quick_requested());
    let report = ablation_report(&setup).expect("ablation failed");

    let mut rendered = Report::new("Ablation report (50 ns pulses, 50 nm spacing, 300 K)");
    rendered.section("Design-choice ablations");
    let mut table = Table::with_headers(&["variant", "# pulses to bit-flip"]);
    for row in &report.rows {
        table.push_row(vec![
            row.variant.clone(),
            row.pulses
                .map(|p| p.to_string())
                .unwrap_or_else(|| "no flip within budget".into()),
        ]);
    }
    rendered.push(table.to_string());
    rendered.push(format!(
        "closed-form estimator: {} pulses (aggressor {:.0} K, victim {:.0} K)",
        report
            .estimate
            .pulses_to_flip
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".into()),
        report.estimate.aggressor_temperature.0,
        report.estimate.victim_temperature.0
    ));

    // Backend ablation: the same 24-pulse burst through both engines, as a
    // declarative two-point campaign. The victim's drift must agree within a
    // small factor (the engines differ only in wiring parasitics).
    let spec = resolve_campaign(CampaignSpec {
        name: "backend agreement burst".into(),
        array_sizes: vec![(3, 3)],
        backends: vec![BackendKind::Pulse, BackendKind::detailed()],
        max_pulses: 24,
        batching: false,
        ..CampaignSpec::default()
    });
    let agreement = run_figure_campaign(spec, CampaignAxis::Backend);
    rendered.section("Backend agreement (pulse vs detailed engine)");
    rendered.push(agreement.to_table().to_string());
    rendered.push(match agreement.max_backend_drift_ratio() {
        Some(ratio) => format!("worst victim-drift ratio between backends: {ratio:.2}x"),
        None => "backends not comparable (no positive drift)".into(),
    });

    println!("{rendered}");
}
