//! Ablation study over the design choices documented in DESIGN.md:
//! crosstalk hub on/off, thermal time constant, pulse batching, and the
//! closed-form estimator vs. the simulation.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin ablation_report`.

use neurohammer::ablation_report;
use neurohammer_bench::{figure_setup, quick_requested};
use rram_analysis::Table;

fn main() {
    let setup = figure_setup(quick_requested());
    let report = ablation_report(&setup).expect("ablation failed");

    println!("# Ablation report (50 ns pulses, 50 nm spacing, 300 K)");
    let mut table = Table::with_headers(&["variant", "# pulses to bit-flip"]);
    for row in &report.rows {
        table.push_row(vec![
            row.variant.clone(),
            row.pulses.map(|p| p.to_string()).unwrap_or_else(|| "no flip within budget".into()),
        ]);
    }
    println!("{table}");
    println!(
        "closed-form estimator: {} pulses (aggressor {:.0} K, victim {:.0} K)",
        report.estimate.pulses_to_flip.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
        report.estimate.aggressor_temperature.0,
        report.estimate.victim_temperature.0
    );
}
