//! Regenerates Fig. 2a: the mean filament temperature of every cell of a
//! 5×5 crossbar while the centre cell dissipates its LRS write power, plus
//! the extracted thermal resistance and crosstalk coefficients (Eq. 3–4).
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig2a_temperature_matrix`.

use neurohammer::{fig2a_temperature_matrix, CouplingSource, ExperimentSetup};
use neurohammer_bench::quick_requested;

fn main() {
    let voxel = if quick_requested() { 25.0 } else { 10.0 };
    let setup = ExperimentSetup {
        coupling: CouplingSource::Fem { voxel_nm: voxel },
        ..ExperimentSetup::default()
    };
    let result = fig2a_temperature_matrix(&setup, 50.0).expect("field solve failed");

    println!("# Fig. 2a — temperature values of the 5x5 crossbar (50 nm spacing, 300 K ambient)");
    println!(
        "hammered-cell power P_LRS        : {:.3e} W",
        result.hammered_power.0
    );
    println!(
        "compact-model filament T (Eq. 6) : {:.1} K",
        result.compact_model_temperature.0
    );
    println!(
        "field-solver R_th (Eq. 3)        : {:.3e} K/W",
        result.extraction.r_th.0
    );
    println!(
        "fit intercept T0                 : {:.2} K",
        result.extraction.t0.0
    );
    println!(
        "worst per-cell fit R^2           : {:.6}",
        result.extraction.min_r_squared
    );

    println!("\nmean filament temperature per cell [K]:");
    let matrix = &result.extraction.temperature_matrix;
    for row in 0..matrix.rows() {
        let line: Vec<String> = (0..matrix.cols())
            .map(|c| format!("{:7.1}", matrix.get(row, c).0))
            .collect();
        println!("  {}", line.join(" "));
    }

    println!("\ncrosstalk coefficients alpha_ij (Eq. 4, selected cell = centre):");
    let alpha = &result.extraction.alpha;
    for row in 0..alpha.rows() {
        let line: Vec<String> = (0..alpha.cols())
            .map(|c| format!("{:7.4}", alpha.get(row, c)))
            .collect();
        println!("  {}", line.join(" "));
    }
}
