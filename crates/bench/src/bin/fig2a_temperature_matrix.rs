//! Regenerates Fig. 2a: the mean filament temperature of every cell of a
//! 5×5 crossbar while the centre cell dissipates its LRS write power, plus
//! the extracted thermal resistance and crosstalk coefficients (Eq. 3–4).
//!
//! The headline hammer burst is expressed as a (single-point, FEM-coupled)
//! campaign spec and executed through the streaming campaign runner, so the
//! binary understands the same `--campaign`/`--csv`/`--json`/`--spec`/
//! `--shard`/`--checkpoint`/`--resume`/`--merge` flags as the other
//! figures; the per-cell temperature matrix and α extraction are rendered
//! alongside.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig2a_temperature_matrix`.

use neurohammer::campaign::{CampaignAxis, CouplingSpec};
use neurohammer::{fig2a_temperature_matrix, CouplingSource, ExperimentSetup};
use neurohammer_bench::{
    campaign_figure, figure_campaign, maybe_print_report_json, maybe_print_spec, quick_requested,
    resolve_campaign, run_figure_campaign, shard_requested,
};

fn main() {
    let quick = quick_requested();
    let voxel = if quick { 25.0 } else { 10.0 };

    // The paper's single experiment point — centre cell hammered at V_SET,
    // 50 nm spacing, 300 K — as a declarative campaign. The burst budget is
    // small: Fig. 2a is about the thermal field, not the bit-flip.
    let mut spec = figure_campaign(quick);
    spec.name = "fig2a temperature matrix (50 nm, 300 K)".into();
    spec.coupling = CouplingSpec::Fem { voxel_nm: voxel };
    spec.max_pulses = 20_000;
    let spec = resolve_campaign(spec);
    let report = run_figure_campaign(spec.clone(), CampaignAxis::Spacing);
    if maybe_print_report_json(&report) {
        return;
    }

    println!(
        "{}",
        campaign_figure(
            "Fig. 2a — temperature values of the 5x5 crossbar (50 nm spacing, 300 K ambient)",
            &report,
            CampaignAxis::Spacing,
        )
    );

    // The per-cell matrix/α rendering re-runs the field solve and is not
    // sharded; only shard 0 (or an unsharded/merged run) renders it, so a
    // distributed run does not repeat the extraction in every process.
    if shard_requested().is_some_and(|shard| shard.index != 0) {
        maybe_print_spec(&spec);
        return;
    }
    let setup = ExperimentSetup {
        coupling: CouplingSource::Fem { voxel_nm: voxel },
        ..ExperimentSetup::default()
    };
    let result = fig2a_temperature_matrix(&setup, 50.0).expect("field solve failed");

    println!(
        "hammered-cell power P_LRS        : {:.3e} W",
        result.hammered_power.0
    );
    println!(
        "compact-model filament T (Eq. 6) : {:.1} K",
        result.compact_model_temperature.0
    );
    println!(
        "field-solver R_th (Eq. 3)        : {:.3e} K/W",
        result.extraction.r_th.0
    );
    println!(
        "fit intercept T0                 : {:.2} K",
        result.extraction.t0.0
    );
    println!(
        "worst per-cell fit R^2           : {:.6}",
        result.extraction.min_r_squared
    );

    println!("\nmean filament temperature per cell [K]:");
    let matrix = &result.extraction.temperature_matrix;
    for row in 0..matrix.rows() {
        let line: Vec<String> = (0..matrix.cols())
            .map(|c| format!("{:7.1}", matrix.get(row, c).0))
            .collect();
        println!("  {}", line.join(" "));
    }

    println!("\ncrosstalk coefficients alpha_ij (Eq. 4, selected cell = centre):");
    let alpha = &result.extraction.alpha;
    for row in 0..alpha.rows() {
        let line: Vec<String> = (0..alpha.cols())
            .map(|c| format!("{:7.4}", alpha.get(row, c)))
            .collect();
        println!("  {}", line.join(" "));
    }
    maybe_print_spec(&spec);
}
