//! Regenerates Fig. 3a: number of pulses to trigger a bit-flip vs. pulse
//! length (10–100 ns), 50 nm electrode spacing, 300 K ambient — expressed as
//! a declarative campaign grid.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig3a_pulse_length`.
//! Pass `--campaign <spec.json>` to run a custom grid, `--csv` for raw rows,
//! `--json` for the bit-exact report JSON instead of the figure, `--spec`
//! to print the executed grid as JSON, `--shard i/n`, `--checkpoint <path>`,
//! `--resume` and `--merge <path>...` for distributed/resumable execution
//! (see the crate docs).

use neurohammer::campaign::CampaignAxis;
use neurohammer_bench::{
    campaign_figure, figure_campaign, maybe_print_report_json, maybe_print_spec, quick_requested,
    resolve_campaign, run_figure_campaign,
};

fn main() {
    let quick = quick_requested();
    let mut spec = figure_campaign(quick);
    spec.name = "fig3a pulse length sweep (50 nm, 300 K)".into();
    spec.pulse_lengths_ns = if quick {
        vec![10.0, 30.0, 50.0, 100.0]
    } else {
        (1..=10).map(|i| i as f64 * 10.0).collect()
    };
    let spec = resolve_campaign(spec);

    let report = run_figure_campaign(spec.clone(), CampaignAxis::PulseLength);
    // Machine-readable form, every float bit-exact: two runs of the same
    // spec must diff empty (the CI surrogate smoke relies on it).
    if maybe_print_report_json(&report) {
        return;
    }
    println!(
        "{}",
        campaign_figure(
            "Fig. 3a — impact of the pulse length (50 nm spacing, 300 K)",
            &report,
            CampaignAxis::PulseLength,
        )
    );
    for series in report.series_over(CampaignAxis::PulseLength) {
        println!(
            "monotonically decreasing: {} | first/last ratio: {:.1}",
            series.is_monotonically_decreasing(),
            series.endpoint_ratio().unwrap_or(f64::NAN)
        );
    }
    maybe_print_spec(&spec);
}
