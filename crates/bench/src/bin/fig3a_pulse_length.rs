//! Regenerates Fig. 3a: number of pulses to trigger a bit-flip vs. pulse
//! length (10–100 ns), 50 nm electrode spacing, 300 K ambient.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig3a_pulse_length`.

use neurohammer::fig3a_pulse_length;
use neurohammer_bench::{figure_setup, print_series, quick_requested};

fn main() {
    let quick = quick_requested();
    let setup = figure_setup(quick);
    let lengths: Vec<f64> = if quick {
        vec![10.0, 30.0, 50.0, 100.0]
    } else {
        (1..=10).map(|i| i as f64 * 10.0).collect()
    };
    let series = fig3a_pulse_length(&setup, &lengths).expect("fig3a failed");
    println!("# Fig. 3a — impact of the pulse length (50 nm spacing, 300 K)");
    print_series(&series, "pulse length");
    println!(
        "monotonically decreasing: {} | first/last ratio: {:.1}",
        series.is_monotonically_decreasing(),
        series.endpoint_ratio().unwrap_or(f64::NAN)
    );
}
