//! Regenerates the Fig. 3d–h attack-pattern comparison: pulses-to-flip for
//! the single, double-sided, quad and diagonal aggressor patterns —
//! expressed as a declarative campaign grid over the pattern axis.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig3d_attack_patterns`.
//! Pass `--campaign <spec.json>` to run a custom grid, `--csv` for raw rows,
//! `--json` for the bit-exact report JSON instead of the figure,
//! `--spec` to print the executed grid as JSON, `--shard i/n`,
//! `--checkpoint <path>`, `--resume` and `--merge <path>...` for
//! distributed/resumable execution (see the crate docs).

use neurohammer::campaign::CampaignAxis;
use neurohammer::AttackPattern;
use neurohammer_bench::{
    campaign_figure, figure_campaign, maybe_print_report_json, maybe_print_spec, quick_requested,
    resolve_campaign, run_figure_campaign,
};

fn main() {
    let mut spec = figure_campaign(quick_requested());
    spec.name = "fig3d attack pattern comparison (50 ns, 50 nm, 300 K)".into();
    spec.patterns = AttackPattern::ALL.to_vec();
    let spec = resolve_campaign(spec);

    let report = run_figure_campaign(spec.clone(), CampaignAxis::Pattern);
    if maybe_print_report_json(&report) {
        return;
    }
    println!(
        "{}",
        campaign_figure(
            "Fig. 3d–h — impact of different attack patterns (50 ns pulses, 50 nm, 300 K)",
            &report,
            CampaignAxis::Pattern,
        )
    );
    maybe_print_spec(&spec);
}
