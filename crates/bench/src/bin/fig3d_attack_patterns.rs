//! Regenerates the Fig. 3d–h attack-pattern comparison: pulses-to-flip for
//! the single, double-sided, quad and diagonal aggressor patterns.
//!
//! Run with `cargo run -p neurohammer-bench --release --bin fig3d_attack_patterns`.

use neurohammer::fig3d_attack_patterns;
use neurohammer_bench::{figure_setup, print_series, quick_requested};
use rram_units::Seconds;

fn main() {
    let setup = figure_setup(quick_requested());
    let series = fig3d_attack_patterns(&setup, Seconds(50e-9)).expect("fig3d failed");
    println!("# Fig. 3d–h — impact of different attack patterns (50 ns pulses, 50 nm, 300 K)");
    print_series(&series, "attack pattern");
}
