//! Benchmarks the Fig. 3d–h flow: one hammering campaign per attack pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurohammer::attack::{run_attack, AttackConfig};
use neurohammer::pattern::AttackPattern;
use rram_crossbar::{CellAddress, EngineConfig, PulseEngine};
use rram_jart::DeviceParams;
use rram_units::{Seconds, Volts};

fn attack_with_pattern(pattern: AttackPattern) -> u64 {
    let mut engine = PulseEngine::with_uniform_coupling(
        5,
        5,
        DeviceParams::default(),
        0.18,
        EngineConfig::default(),
    );
    let config = AttackConfig {
        victim: CellAddress::new(2, 2),
        pattern,
        amplitude: Volts(1.05),
        pulse_length: Seconds(100e-9),
        gap: Seconds(100e-9),
        max_pulses: 2_000_000,
        batching: true,
        trace: false,
    };
    run_attack(&mut engine, &config).pulses
}

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3d_patterns");
    group.sample_size(10);
    for &pattern in &[
        AttackPattern::SingleAggressor,
        AttackPattern::DoubleSidedRow,
        AttackPattern::Quad,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(pattern.label()),
            &pattern,
            |b, &p| b.iter(|| attack_with_pattern(p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
