//! Hammer-pulse throughput per backend on the paper-scale 64×64 array.
//!
//! Times how many (pulse + idle-gap) hammer cycles per second each
//! [`BackendKind`] sustains, prints a comparison and records it in
//! `BENCH_backends.json` at the workspace root. The struct-of-arrays
//! batched engine must beat the scalar pulse engine by ≥3× here — this is
//! the hot-path acceptance gate of the batched-backend refactor, asserted
//! at the end so a regression fails `cargo bench`.
//!
//! The MNA-backed detailed engine is timed on a 16×16 array instead (its
//! per-sub-step circuit solve makes 64×64 transients take hours — that
//! fidelity tier exists for small-array validation, not campaigns); its
//! entry in the JSON names its own array size.

use std::time::Instant;

use criterion::{black_box, BatchSize, Criterion};
use neurohammer::campaign::json::Json;
use rram_crossbar::{BackendKind, CellAddress, CrosstalkHub, EngineConfig, HammerBackend};
use rram_jart::{DeviceParams, DigitalState};
use rram_units::{Seconds, Volts};

const ROWS: usize = 64;
const COLS: usize = 64;
/// Array edge for the detailed (MNA) engine's separate measurement.
const DETAILED_EDGE: usize = 16;
/// 50 ns pulse + 50 ns gap, the campaign default duty cycle.
const PULSE: Seconds = Seconds(50e-9);

fn build(kind: BackendKind, rows: usize, cols: usize) -> Box<dyn HammerBackend> {
    let hub = CrosstalkHub::two_ring(rows, cols, 0.15, Seconds(30e-9));
    kind.build(
        rows,
        cols,
        DeviceParams::default(),
        hub,
        EngineConfig::default(),
    )
}

/// Applies `pulses` hammer cycles to the array-centre aggressor.
fn hammer(engine: &mut dyn HammerBackend, pulses: usize) {
    let aggressor = CellAddress::new(engine.rows() / 2, engine.cols() / 2);
    engine.force_state(aggressor, DigitalState::Lrs);
    for _ in 0..pulses {
        engine.apply_pulse(aggressor, Volts(1.05), PULSE);
        engine.idle(PULSE);
    }
    black_box(engine.thermal_readout(aggressor));
}

/// Sustained hammer throughput of one backend, in pulses per second
/// (engine construction is excluded).
fn pulses_per_second(kind: BackendKind, rows: usize, cols: usize, pulses: usize) -> f64 {
    let mut engine = build(kind, rows, cols);
    let start = Instant::now();
    hammer(engine.as_mut(), pulses);
    pulses as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    // Criterion-style per-burst timings (one warm-up + two samples each).
    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("backend_throughput_64x64");
    group.sample_size(2);
    for (name, kind, pulses) in [
        ("pulse", BackendKind::Pulse, 1),
        ("batched", BackendKind::Batched, 8),
    ] {
        group.bench_function(format!("{name}_{pulses}_hammer_pulses"), |b| {
            b.iter_batched(
                || build(kind, ROWS, COLS),
                |mut engine| hammer(engine.as_mut(), pulses),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // The recorded comparison: sustained pulses/sec per backend.
    let pulse_pps = pulses_per_second(BackendKind::Pulse, ROWS, COLS, 3);
    let batched_pps = pulses_per_second(BackendKind::Batched, ROWS, COLS, 60);
    let detailed_pps = pulses_per_second(BackendKind::detailed(), DETAILED_EDGE, DETAILED_EDGE, 2);
    let speedup = batched_pps / pulse_pps;

    println!("\nbackend throughput (50 ns pulse + 50 ns gap):");
    println!(
        "  {:>8}: {pulse_pps:10.2} pulses/s on {ROWS}x{COLS}",
        "pulse"
    );
    println!(
        "  {:>8}: {batched_pps:10.2} pulses/s on {ROWS}x{COLS}",
        "batched"
    );
    println!(
        "  {:>8}: {detailed_pps:10.2} pulses/s on {DETAILED_EDGE}x{DETAILED_EDGE}",
        "detailed"
    );
    println!("  batched/pulse speedup: {speedup:.1}x");

    let backend_entry = |array: String, pps: f64| {
        Json::Object(vec![
            ("array".into(), Json::String(array)),
            ("pulses_per_second".into(), Json::Number(pps)),
        ])
    };
    let report = Json::Object(vec![
        ("pulse_ns".into(), Json::Number(PULSE.0 * 1e9)),
        ("gap_ns".into(), Json::Number(PULSE.0 * 1e9)),
        (
            "backends".into(),
            Json::Object(vec![
                (
                    "pulse".into(),
                    backend_entry(format!("{ROWS}x{COLS}"), pulse_pps),
                ),
                (
                    "batched".into(),
                    backend_entry(format!("{ROWS}x{COLS}"), batched_pps),
                ),
                (
                    "detailed".into(),
                    backend_entry(format!("{DETAILED_EDGE}x{DETAILED_EDGE}"), detailed_pps),
                ),
            ]),
        ),
        ("batched_over_pulse_speedup".into(), Json::Number(speedup)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backends.json");
    std::fs::write(path, format!("{report}\n")).expect("cannot write BENCH_backends.json");
    println!("  recorded in {path}");

    assert!(
        speedup >= 3.0,
        "batched backend must sustain >=3x the pulse backend's throughput \
         on a {ROWS}x{COLS} array, measured {speedup:.2}x"
    );
}
