//! Hammer-pulse throughput per backend, from the paper-scale 64×64 array
//! up to the production-sized 256×256 and megabit 1024×1024 arrays.
//!
//! Times how many (pulse + idle-gap) hammer cycles per second each
//! [`BackendKind`] sustains, prints a comparison and records it in
//! `BENCH_backends.json` at the workspace root. Every row records the
//! *effective* worker-thread count and SIMD tier the engine reports —
//! [`HammerBackend::worker_threads`] / [`HammerBackend::simd_isa`] — not
//! whatever was requested. Three acceptance gates are asserted at the end
//! so a regression fails `cargo bench`:
//!
//! - the struct-of-arrays batched engine must beat the scalar pulse engine
//!   by ≥3× on 64×64 (the batched-backend refactor's gate),
//! - on 256×256 the threaded batched engine must beat the single-threaded
//!   one by ≥3× — *skipped with a printed notice on machines with fewer
//!   than four cores*, where the speedup is physically unobtainable, and
//! - on AVX2 hardware (with the `simd` feature compiled in) the bit-exact
//!   SIMD tier must beat the scalar chunk loop by ≥2× on 256×256 —
//!   *skipped with a printed notice when no vector ISA is detected*, where
//!   the kernel falls back to the identical scalar loop.
//!
//! The `batched_256` row is measured with the SIMD kill switch engaged
//! (`simd::force_scalar`), so it is the chunked scalar baseline on every
//! build; `batched_simd_256` and `batched_fast_256` time the bit-exact and
//! fast-math SIMD tiers against it. The JSON records whatever the machine
//! honestly measured either way.
//!
//! The MNA-backed detailed engine is timed on a 16×16 array instead (its
//! per-sub-step circuit solve makes 64×64 transients take hours — that
//! fidelity tier exists for small-array validation, not campaigns); its
//! entry in the JSON names its own array size. The surrogate entries time
//! the table-driven reduced-order backend on the large arrays it exists
//! for; its one-off table-fit cost is recorded separately from the
//! sustained throughput.

use std::time::Instant;

use criterion::{black_box, BatchSize, Criterion};
use neurohammer::campaign::json::Json;
use rram_crossbar::{BackendKind, CellAddress, CrosstalkHub, EngineConfig, HammerBackend};
use rram_jart::simd::{self, SimdLevel};
use rram_jart::{DeviceParams, DigitalState};
use rram_units::{Seconds, Volts};

const ROWS: usize = 64;
const COLS: usize = 64;
/// Production-sized array edge for the threaded/SIMD/surrogate comparison.
const LARGE_EDGE: usize = 256;
/// Megabit-scale array edge (the arrays the neurohammer setting targets).
const HUGE_EDGE: usize = 1024;
/// Array edge for the detailed (MNA) engine's separate measurement.
const DETAILED_EDGE: usize = 16;
/// 50 ns pulse + 50 ns gap, the campaign default duty cycle.
const PULSE: Seconds = Seconds(50e-9);

fn build(kind: BackendKind, rows: usize, cols: usize) -> Box<dyn HammerBackend> {
    let hub = CrosstalkHub::two_ring(rows, cols, 0.15, Seconds(30e-9));
    kind.build(
        rows,
        cols,
        DeviceParams::default(),
        hub,
        EngineConfig::default(),
    )
}

/// Applies `pulses` hammer cycles to the array-centre aggressor.
fn hammer(engine: &mut dyn HammerBackend, pulses: usize) {
    let aggressor = CellAddress::new(engine.rows() / 2, engine.cols() / 2);
    engine.force_state(aggressor, DigitalState::Lrs);
    for _ in 0..pulses {
        engine.apply_pulse(aggressor, Volts(1.05), PULSE);
        engine.idle(PULSE);
    }
    black_box(engine.thermal_readout(aggressor));
}

/// One recorded throughput measurement: the sustained rate plus what the
/// engine honestly reports about how it ran.
struct Measurement {
    /// Sustained hammer throughput, pulses per second (construction and
    /// table fitting excluded).
    pps: f64,
    /// Engine construction time, s — the surrogate's one-off table fit.
    build_seconds: f64,
    /// Effective lane-integration worker threads, from the engine.
    threads: usize,
    /// SIMD tier the lane kernel dispatched to, from the engine.
    simd_isa: &'static str,
}

/// Measures one backend configuration's sustained hammer throughput.
fn measure(
    kind: BackendKind,
    rows: usize,
    cols: usize,
    threads: usize,
    fast_math: bool,
    pulses: usize,
) -> Measurement {
    let hub = CrosstalkHub::two_ring(rows, cols, 0.15, Seconds(30e-9));
    let config = EngineConfig {
        threads,
        fast_math,
        ..EngineConfig::default()
    };
    let build_start = Instant::now();
    let mut engine = kind.build(rows, cols, DeviceParams::default(), hub, config);
    let build_seconds = build_start.elapsed().as_secs_f64();
    let threads = engine.worker_threads();
    let simd_isa = engine.simd_isa();
    // Warm up past the cold-array thermal transient, then keep the best of
    // three samples — the standard noise-robust throughput estimate on a
    // shared machine.
    hammer(engine.as_mut(), pulses.div_ceil(2));
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        hammer(engine.as_mut(), pulses);
        best = best.min(start.elapsed().as_secs_f64());
    }
    Measurement {
        pps: pulses as f64 / best,
        build_seconds,
        threads,
        simd_isa,
    }
}

/// [`measure`] with the SIMD kill switch engaged: the chunked *scalar*
/// baseline, identical on every build and CPU.
fn measure_forced_scalar(
    kind: BackendKind,
    rows: usize,
    cols: usize,
    threads: usize,
    pulses: usize,
) -> Measurement {
    simd::force_scalar(true);
    let measurement = measure(kind, rows, cols, threads, false, pulses);
    simd::force_scalar(false);
    measurement
}

fn main() {
    // Criterion-style per-burst timings (one warm-up + two samples each).
    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("backend_throughput_64x64");
    group.sample_size(2);
    for (name, kind, pulses) in [
        ("pulse", BackendKind::Pulse, 1),
        ("batched", BackendKind::Batched, 8),
    ] {
        group.bench_function(format!("{name}_{pulses}_hammer_pulses"), |b| {
            b.iter_batched(
                || build(kind, ROWS, COLS),
                |mut engine| hammer(engine.as_mut(), pulses),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // The recorded comparison: sustained pulses/sec per backend. The
    // threaded rows use as many workers as the machine offers (capped at
    // 8 — the lane blocks stop amortising dispatch beyond that).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.min(8);
    let detected = simd::detected();
    let pulse = measure(BackendKind::Pulse, ROWS, COLS, 1, false, 3);
    let batched = measure(BackendKind::Batched, ROWS, COLS, 1, false, 60);
    let detailed = measure(
        BackendKind::detailed(),
        DETAILED_EDGE,
        DETAILED_EDGE,
        1,
        false,
        2,
    );
    let speedup = batched.pps / pulse.pps;

    // 256×256: the scalar chunk loop, the bit-exact SIMD tier, the opt-in
    // fast-math tier, the threaded path and the surrogate.
    let large_scalar = measure_forced_scalar(BackendKind::Batched, LARGE_EDGE, LARGE_EDGE, 1, 8);
    let large_simd = measure(BackendKind::Batched, LARGE_EDGE, LARGE_EDGE, 1, false, 8);
    let large_fast = measure(BackendKind::Batched, LARGE_EDGE, LARGE_EDGE, 1, true, 8);
    let large_threaded = measure(
        BackendKind::Batched,
        LARGE_EDGE,
        LARGE_EDGE,
        threads,
        false,
        8,
    );
    let large_surrogate = measure(BackendKind::Surrogate, LARGE_EDGE, LARGE_EDGE, 1, false, 8);
    let simd_speedup = large_simd.pps / large_scalar.pps;
    let fast_speedup = large_fast.pps / large_simd.pps;
    let threaded_speedup = large_threaded.pps / large_simd.pps;

    let huge_threaded = measure(
        BackendKind::Batched,
        HUGE_EDGE,
        HUGE_EDGE,
        threads,
        false,
        2,
    );
    let huge_surrogate = measure(BackendKind::Surrogate, HUGE_EDGE, HUGE_EDGE, 1, false, 2);

    let describe = |m: &Measurement| format!("{} thread(s), {} lane kernel", m.threads, m.simd_isa);
    println!("\nbackend throughput (50 ns pulse + 50 ns gap):");
    println!(
        "  {:>16}: {:10.2} pulses/s on {ROWS}x{COLS}",
        "pulse", pulse.pps
    );
    println!(
        "  {:>16}: {:10.2} pulses/s on {ROWS}x{COLS} ({})",
        "batched",
        batched.pps,
        describe(&batched)
    );
    println!(
        "  {:>16}: {:10.2} pulses/s on {DETAILED_EDGE}x{DETAILED_EDGE}",
        "detailed", detailed.pps
    );
    println!(
        "  {:>16}: {:10.2} pulses/s on {LARGE_EDGE}x{LARGE_EDGE} ({})",
        "batched scalar",
        large_scalar.pps,
        describe(&large_scalar)
    );
    println!(
        "  {:>16}: {:10.2} pulses/s on {LARGE_EDGE}x{LARGE_EDGE} ({})",
        "batched simd",
        large_simd.pps,
        describe(&large_simd)
    );
    println!(
        "  {:>16}: {:10.2} pulses/s on {LARGE_EDGE}x{LARGE_EDGE} ({})",
        "batched fast",
        large_fast.pps,
        describe(&large_fast)
    );
    println!(
        "  {:>16}: {:10.2} pulses/s on {LARGE_EDGE}x{LARGE_EDGE} ({})",
        format!("batched x{}", large_threaded.threads),
        large_threaded.pps,
        describe(&large_threaded)
    );
    println!(
        "  {:>16}: {:10.2} pulses/s on {LARGE_EDGE}x{LARGE_EDGE} \
         (one-off table fit {:.2}s)",
        "surrogate", large_surrogate.pps, large_surrogate.build_seconds
    );
    println!(
        "  {:>16}: {:10.2} pulses/s on {HUGE_EDGE}x{HUGE_EDGE} ({})",
        format!("batched x{}", huge_threaded.threads),
        huge_threaded.pps,
        describe(&huge_threaded)
    );
    println!(
        "  {:>16}: {:10.2} pulses/s on {HUGE_EDGE}x{HUGE_EDGE}",
        "surrogate", huge_surrogate.pps
    );
    println!("  batched/pulse speedup on {ROWS}x{COLS}: {speedup:.1}x");
    println!(
        "  simd/scalar speedup on {LARGE_EDGE}x{LARGE_EDGE}: {simd_speedup:.2}x \
         (detected {})",
        detected.label()
    );
    println!("  fast-math/simd speedup on {LARGE_EDGE}x{LARGE_EDGE}: {fast_speedup:.2}x");
    println!(
        "  threaded/batched speedup on {LARGE_EDGE}x{LARGE_EDGE}: {threaded_speedup:.2}x \
         ({threads} threads on {cores} core(s))"
    );

    let backend_entry = |array: String, m: &Measurement| {
        Json::Object(vec![
            ("array".into(), Json::String(array)),
            ("threads".into(), Json::Number(m.threads as f64)),
            ("simd_isa".into(), Json::String(m.simd_isa.into())),
            ("pulses_per_second".into(), Json::Number(m.pps)),
        ])
    };
    let large = format!("{LARGE_EDGE}x{LARGE_EDGE}");
    let huge = format!("{HUGE_EDGE}x{HUGE_EDGE}");
    let report = Json::Object(vec![
        ("pulse_ns".into(), Json::Number(PULSE.0 * 1e9)),
        ("gap_ns".into(), Json::Number(PULSE.0 * 1e9)),
        ("machine_cores".into(), Json::Number(cores as f64)),
        (
            "simd_detected".into(),
            Json::String(detected.label().into()),
        ),
        (
            "backends".into(),
            Json::Object(vec![
                (
                    "pulse".into(),
                    backend_entry(format!("{ROWS}x{COLS}"), &pulse),
                ),
                (
                    "batched".into(),
                    backend_entry(format!("{ROWS}x{COLS}"), &batched),
                ),
                (
                    "detailed".into(),
                    backend_entry(format!("{DETAILED_EDGE}x{DETAILED_EDGE}"), &detailed),
                ),
                (
                    "batched_256".into(),
                    backend_entry(large.clone(), &large_scalar),
                ),
                (
                    "batched_simd_256".into(),
                    backend_entry(large.clone(), &large_simd),
                ),
                (
                    "batched_fast_256".into(),
                    backend_entry(large.clone(), &large_fast),
                ),
                (
                    "batched_threaded_256".into(),
                    backend_entry(large.clone(), &large_threaded),
                ),
                ("surrogate_256".into(), {
                    let Json::Object(mut fields) = backend_entry(large, &large_surrogate) else {
                        unreachable!()
                    };
                    fields.push((
                        "table_fit_seconds".into(),
                        Json::Number(large_surrogate.build_seconds),
                    ));
                    Json::Object(fields)
                }),
                (
                    "batched_threaded_1024".into(),
                    backend_entry(huge.clone(), &huge_threaded),
                ),
                (
                    "surrogate_1024".into(),
                    backend_entry(huge, &huge_surrogate),
                ),
            ]),
        ),
        ("batched_over_pulse_speedup".into(), Json::Number(speedup)),
        (
            "simd_over_scalar_speedup_256".into(),
            Json::Number(simd_speedup),
        ),
        (
            "fast_math_over_simd_speedup_256".into(),
            Json::Number(fast_speedup),
        ),
        (
            "threaded_over_batched_speedup_256".into(),
            Json::Number(threaded_speedup),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backends.json");
    std::fs::write(path, format!("{report}\n")).expect("cannot write BENCH_backends.json");
    println!("  recorded in {path}");

    assert!(
        speedup >= 3.0,
        "batched backend must sustain >=3x the pulse backend's throughput \
         on a {ROWS}x{COLS} array, measured {speedup:.2}x"
    );
    if cores >= 4 {
        assert!(
            threaded_speedup >= 3.0,
            "threaded batched backend ({threads} threads on {cores} cores) must sustain \
             >=3x the single-threaded throughput on a {LARGE_EDGE}x{LARGE_EDGE} array, \
             measured {threaded_speedup:.2}x"
        );
    } else {
        println!(
            "  threaded >=3x assertion skipped: {cores} core(s) available, \
             need at least 4 for the speedup to be obtainable"
        );
    }
    if detected == SimdLevel::Avx2 {
        assert!(
            simd_speedup >= 2.0,
            "the bit-exact SIMD tier must sustain >=2x the scalar chunk loop \
             on a {LARGE_EDGE}x{LARGE_EDGE} array on AVX2 hardware, \
             measured {simd_speedup:.2}x"
        );
    } else {
        println!(
            "  simd >=2x assertion skipped: lane kernel detected {:?} \
             (scalar fallback is bit-identical, so there is nothing to gate)",
            detected.label()
        );
    }
}
