//! Hammer-pulse throughput per backend, from the paper-scale 64×64 array
//! up to the production-sized 256×256 and megabit 1024×1024 arrays.
//!
//! Times how many (pulse + idle-gap) hammer cycles per second each
//! [`BackendKind`] sustains, prints a comparison and records it in
//! `BENCH_backends.json` at the workspace root. Two acceptance gates are
//! asserted at the end so a regression fails `cargo bench`:
//!
//! - the struct-of-arrays batched engine must beat the scalar pulse engine
//!   by ≥3× on 64×64 (the batched-backend refactor's gate), and
//! - on 256×256 the threaded batched engine must beat the single-threaded
//!   one by ≥3× — *skipped with a printed notice on machines with fewer
//!   than four cores*, where the speedup is physically unobtainable (the
//!   JSON records whatever the machine honestly measured either way).
//!
//! The MNA-backed detailed engine is timed on a 16×16 array instead (its
//! per-sub-step circuit solve makes 64×64 transients take hours — that
//! fidelity tier exists for small-array validation, not campaigns); its
//! entry in the JSON names its own array size. The surrogate entries time
//! the table-driven reduced-order backend on the large arrays it exists
//! for; its one-off table-fit cost is recorded separately from the
//! sustained throughput.

use std::time::Instant;

use criterion::{black_box, BatchSize, Criterion};
use neurohammer::campaign::json::Json;
use rram_crossbar::{BackendKind, CellAddress, CrosstalkHub, EngineConfig, HammerBackend};
use rram_jart::{DeviceParams, DigitalState};
use rram_units::{Seconds, Volts};

const ROWS: usize = 64;
const COLS: usize = 64;
/// Production-sized array edge for the threaded/surrogate comparison.
const LARGE_EDGE: usize = 256;
/// Megabit-scale array edge (the arrays the neurohammer setting targets).
const HUGE_EDGE: usize = 1024;
/// Array edge for the detailed (MNA) engine's separate measurement.
const DETAILED_EDGE: usize = 16;
/// 50 ns pulse + 50 ns gap, the campaign default duty cycle.
const PULSE: Seconds = Seconds(50e-9);

fn build(kind: BackendKind, rows: usize, cols: usize) -> Box<dyn HammerBackend> {
    build_threaded(kind, rows, cols, 1)
}

fn build_threaded(
    kind: BackendKind,
    rows: usize,
    cols: usize,
    threads: usize,
) -> Box<dyn HammerBackend> {
    let hub = CrosstalkHub::two_ring(rows, cols, 0.15, Seconds(30e-9));
    let config = EngineConfig {
        threads,
        ..EngineConfig::default()
    };
    kind.build(rows, cols, DeviceParams::default(), hub, config)
}

/// Applies `pulses` hammer cycles to the array-centre aggressor.
fn hammer(engine: &mut dyn HammerBackend, pulses: usize) {
    let aggressor = CellAddress::new(engine.rows() / 2, engine.cols() / 2);
    engine.force_state(aggressor, DigitalState::Lrs);
    for _ in 0..pulses {
        engine.apply_pulse(aggressor, Volts(1.05), PULSE);
        engine.idle(PULSE);
    }
    black_box(engine.thermal_readout(aggressor));
}

/// Sustained hammer throughput of one backend, in pulses per second
/// (engine construction — including the surrogate's table fit — is
/// excluded). Also returns the construction time so the surrogate's
/// one-off fit cost can be reported next to its throughput.
fn pulses_per_second(
    kind: BackendKind,
    rows: usize,
    cols: usize,
    threads: usize,
    pulses: usize,
) -> (f64, f64) {
    let build_start = Instant::now();
    let mut engine = build_threaded(kind, rows, cols, threads);
    let build_seconds = build_start.elapsed().as_secs_f64();
    let start = Instant::now();
    hammer(engine.as_mut(), pulses);
    (pulses as f64 / start.elapsed().as_secs_f64(), build_seconds)
}

fn main() {
    // Criterion-style per-burst timings (one warm-up + two samples each).
    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("backend_throughput_64x64");
    group.sample_size(2);
    for (name, kind, pulses) in [
        ("pulse", BackendKind::Pulse, 1),
        ("batched", BackendKind::Batched, 8),
    ] {
        group.bench_function(format!("{name}_{pulses}_hammer_pulses"), |b| {
            b.iter_batched(
                || build(kind, ROWS, COLS),
                |mut engine| hammer(engine.as_mut(), pulses),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // The recorded comparison: sustained pulses/sec per backend. The
    // threaded rows use as many workers as the machine offers (capped at
    // 8 — the lane blocks stop amortising dispatch beyond that).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.min(8);
    let (pulse_pps, _) = pulses_per_second(BackendKind::Pulse, ROWS, COLS, 1, 3);
    let (batched_pps, _) = pulses_per_second(BackendKind::Batched, ROWS, COLS, 1, 60);
    let (detailed_pps, _) =
        pulses_per_second(BackendKind::detailed(), DETAILED_EDGE, DETAILED_EDGE, 1, 2);
    let speedup = batched_pps / pulse_pps;

    let (large_batched_pps, _) =
        pulses_per_second(BackendKind::Batched, LARGE_EDGE, LARGE_EDGE, 1, 8);
    let (large_threaded_pps, _) =
        pulses_per_second(BackendKind::Batched, LARGE_EDGE, LARGE_EDGE, threads, 8);
    let (large_surrogate_pps, surrogate_fit_seconds) =
        pulses_per_second(BackendKind::Surrogate, LARGE_EDGE, LARGE_EDGE, 1, 8);
    let threaded_speedup = large_threaded_pps / large_batched_pps;

    let (huge_threaded_pps, _) =
        pulses_per_second(BackendKind::Batched, HUGE_EDGE, HUGE_EDGE, threads, 2);
    let (huge_surrogate_pps, _) =
        pulses_per_second(BackendKind::Surrogate, HUGE_EDGE, HUGE_EDGE, 1, 2);

    println!("\nbackend throughput (50 ns pulse + 50 ns gap):");
    println!(
        "  {:>16}: {pulse_pps:10.2} pulses/s on {ROWS}x{COLS}",
        "pulse"
    );
    println!(
        "  {:>16}: {batched_pps:10.2} pulses/s on {ROWS}x{COLS}",
        "batched"
    );
    println!(
        "  {:>16}: {detailed_pps:10.2} pulses/s on {DETAILED_EDGE}x{DETAILED_EDGE}",
        "detailed"
    );
    println!(
        "  {:>16}: {large_batched_pps:10.2} pulses/s on {LARGE_EDGE}x{LARGE_EDGE}",
        "batched"
    );
    println!(
        "  {:>16}: {large_threaded_pps:10.2} pulses/s on {LARGE_EDGE}x{LARGE_EDGE}",
        format!("batched x{threads}")
    );
    println!(
        "  {:>16}: {large_surrogate_pps:10.2} pulses/s on {LARGE_EDGE}x{LARGE_EDGE} \
         (one-off table fit {surrogate_fit_seconds:.2}s)",
        "surrogate"
    );
    println!(
        "  {:>16}: {huge_threaded_pps:10.2} pulses/s on {HUGE_EDGE}x{HUGE_EDGE}",
        format!("batched x{threads}")
    );
    println!(
        "  {:>16}: {huge_surrogate_pps:10.2} pulses/s on {HUGE_EDGE}x{HUGE_EDGE}",
        "surrogate"
    );
    println!("  batched/pulse speedup on {ROWS}x{COLS}: {speedup:.1}x");
    println!(
        "  threaded/batched speedup on {LARGE_EDGE}x{LARGE_EDGE}: {threaded_speedup:.2}x \
         ({threads} threads on {cores} core(s))"
    );

    let backend_entry = |array: String, threads: usize, pps: f64| {
        Json::Object(vec![
            ("array".into(), Json::String(array)),
            ("threads".into(), Json::Number(threads as f64)),
            ("pulses_per_second".into(), Json::Number(pps)),
        ])
    };
    let large = format!("{LARGE_EDGE}x{LARGE_EDGE}");
    let huge = format!("{HUGE_EDGE}x{HUGE_EDGE}");
    let report = Json::Object(vec![
        ("pulse_ns".into(), Json::Number(PULSE.0 * 1e9)),
        ("gap_ns".into(), Json::Number(PULSE.0 * 1e9)),
        ("machine_cores".into(), Json::Number(cores as f64)),
        (
            "backends".into(),
            Json::Object(vec![
                (
                    "pulse".into(),
                    backend_entry(format!("{ROWS}x{COLS}"), 1, pulse_pps),
                ),
                (
                    "batched".into(),
                    backend_entry(format!("{ROWS}x{COLS}"), 1, batched_pps),
                ),
                (
                    "detailed".into(),
                    backend_entry(format!("{DETAILED_EDGE}x{DETAILED_EDGE}"), 1, detailed_pps),
                ),
                (
                    "batched_256".into(),
                    backend_entry(large.clone(), 1, large_batched_pps),
                ),
                (
                    "batched_threaded_256".into(),
                    backend_entry(large.clone(), threads, large_threaded_pps),
                ),
                ("surrogate_256".into(), {
                    let Json::Object(mut fields) = backend_entry(large, 1, large_surrogate_pps)
                    else {
                        unreachable!()
                    };
                    fields.push((
                        "table_fit_seconds".into(),
                        Json::Number(surrogate_fit_seconds),
                    ));
                    Json::Object(fields)
                }),
                (
                    "batched_threaded_1024".into(),
                    backend_entry(huge.clone(), threads, huge_threaded_pps),
                ),
                (
                    "surrogate_1024".into(),
                    backend_entry(huge, 1, huge_surrogate_pps),
                ),
            ]),
        ),
        ("batched_over_pulse_speedup".into(), Json::Number(speedup)),
        (
            "threaded_over_batched_speedup_256".into(),
            Json::Number(threaded_speedup),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backends.json");
    std::fs::write(path, format!("{report}\n")).expect("cannot write BENCH_backends.json");
    println!("  recorded in {path}");

    assert!(
        speedup >= 3.0,
        "batched backend must sustain >=3x the pulse backend's throughput \
         on a {ROWS}x{COLS} array, measured {speedup:.2}x"
    );
    if cores >= 4 {
        assert!(
            threaded_speedup >= 3.0,
            "threaded batched backend ({threads} threads on {cores} cores) must sustain \
             >=3x the single-threaded throughput on a {LARGE_EDGE}x{LARGE_EDGE} array, \
             measured {threaded_speedup:.2}x"
        );
    } else {
        println!(
            "  threaded >=3x assertion skipped: {cores} core(s) available, \
             need at least 4 for the speedup to be obtainable"
        );
    }
}
