//! Micro-benchmarks of the compact model: static operating point, pulse
//! integration and the characteristic switching-time measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use rram_jart::calibration::time_to_set;
use rram_jart::current::solve_operating_point;
use rram_jart::{DeviceParams, JartDevice};
use rram_units::{Kelvin, Seconds, Volts};

fn bench_device(c: &mut Criterion) {
    let params = DeviceParams::default();
    let mut group = c.benchmark_group("device_kinetics");

    group.bench_function("operating_point_hrs", |b| {
        b.iter(|| solve_operating_point(&params, 0.525, params.n_min))
    });
    group.bench_function("operating_point_lrs", |b| {
        b.iter(|| solve_operating_point(&params, 1.05, params.n_max))
    });
    group.bench_function("half_select_pulse_50ns", |b| {
        b.iter(|| {
            let mut device = JartDevice::new(params.clone());
            device.set_crosstalk_delta(Kelvin(60.0));
            device.step(Volts(0.525), Seconds(50e-9));
            device.concentration()
        })
    });
    group.sample_size(10);
    group.bench_function("time_to_set_heated", |b| {
        b.iter(|| time_to_set(&params, Volts(0.525), Kelvin(90.0), Seconds(10e-3)))
    });
    group.finish();
}

criterion_group!(benches, bench_device);
criterion_main!(benches);
