//! Benchmarks the Fig. 3c flow: attacks at different ambient temperatures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurohammer::attack::{run_attack, AttackConfig};
use neurohammer::pattern::AttackPattern;
use rram_crossbar::{CellAddress, CrossbarArray, CrosstalkHub, EngineConfig, PulseEngine};
use rram_jart::DeviceParams;
use rram_units::{Kelvin, Seconds, Volts};

fn attack_at(ambient: f64) -> u64 {
    let device = DeviceParams::builder()
        .ambient_temperature(ambient)
        .build()
        .expect("params");
    let array = CrossbarArray::new(5, 5, device);
    let hub = CrosstalkHub::uniform(5, 5, 0.18, 0.09, 0.045, Seconds(30e-9));
    let engine_config = EngineConfig {
        ambient: Kelvin(ambient),
        ..EngineConfig::default()
    };
    let mut engine = PulseEngine::new(array, hub, engine_config);
    let config = AttackConfig {
        victim: CellAddress::new(2, 1),
        pattern: AttackPattern::SingleAggressor,
        amplitude: Volts(1.05),
        pulse_length: Seconds(50e-9),
        gap: Seconds(50e-9),
        max_pulses: 3_000_000,
        batching: true,
        trace: false,
    };
    run_attack(&mut engine, &config).pulses
}

fn bench_ambient(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3c_ambient");
    group.sample_size(10);
    for &t in &[323.0_f64, 373.0] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{t}K")), &t, |b, &t| {
            b.iter(|| attack_at(t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ambient);
criterion_main!(benches);
