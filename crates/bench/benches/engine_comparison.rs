//! Compares the fast ideal-driver pulse engine against the MNA-backed
//! detailed engine for a short hammer burst (the DESIGN.md "two fidelities"
//! ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use rram_crossbar::{
    CellAddress, CrosstalkHub, DetailedCrossbar, EngineConfig, PulseEngine, WiringParasitics,
    WriteScheme,
};
use rram_jart::{DeviceParams, DigitalState};
use rram_units::{Seconds, Volts};

const BURST: usize = 10;

fn fast_engine_burst() -> f64 {
    let mut engine = PulseEngine::with_uniform_coupling(
        3,
        3,
        DeviceParams::default(),
        0.15,
        EngineConfig::default(),
    );
    let aggressor = CellAddress::new(1, 1);
    engine
        .array_mut()
        .cell_mut(aggressor)
        .force_state(DigitalState::Lrs);
    for _ in 0..BURST {
        engine.apply_pulse(aggressor, Volts(1.05), Seconds(50e-9));
        engine.idle(Seconds(50e-9));
    }
    engine
        .array()
        .cell(CellAddress::new(1, 0))
        .normalized_state()
}

fn detailed_engine_burst() -> f64 {
    let mut xbar = DetailedCrossbar::new(
        3,
        3,
        DeviceParams::default(),
        WiringParasitics::default(),
        CrosstalkHub::uniform(3, 3, 0.15, 0.075, 0.0375, Seconds(30e-9)),
        WriteScheme::HalfVoltage,
    );
    let aggressor = CellAddress::new(1, 1);
    xbar.force_state(aggressor, DigitalState::Lrs);
    for _ in 0..BURST {
        xbar.apply_pulse_with_dt(aggressor, Volts(1.05), Seconds(50e-9), Seconds(10e-9));
    }
    xbar.normalized_state(CellAddress::new(1, 0))
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_comparison");
    group.sample_size(10);
    group.bench_function("fast_pulse_engine_10_pulses", |b| b.iter(fast_engine_burst));
    group.bench_function("detailed_mna_engine_10_pulses", |b| {
        b.iter(detailed_engine_burst)
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
