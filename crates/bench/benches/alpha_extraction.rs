//! Benchmarks the thermal-crosstalk coefficient extraction (Section IV-A /
//! Fig. 2a): geometry build, steady-state heat solve and the regression.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rram_fem::alpha::{extract_alpha, AlphaConfig};
use rram_fem::geometry::CrossbarGeometry;
use rram_fem::heat::{HeatProblem, HeatSource};
use rram_units::{Kelvin, Watts};

fn coarse_geometry() -> CrossbarGeometry {
    CrossbarGeometry {
        rows: 3,
        cols: 3,
        voxel_nm: 25.0,
        margin_nm: 50.0,
        ..CrossbarGeometry::default()
    }
}

fn bench_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_extraction");
    group.sample_size(10);

    group.bench_function("geometry_build_3x3", |b| {
        b.iter(|| coarse_geometry().build().expect("valid geometry"))
    });

    group.bench_function("heat_solve_3x3", |b| {
        let model = coarse_geometry().build().expect("valid geometry");
        b.iter_batched(
            || (),
            |()| {
                HeatProblem::new(&model, Kelvin(300.0))
                    .with_source(HeatSource {
                        row: 1,
                        col: 1,
                        power: Watts(40e-6),
                    })
                    .solve_cell_matrix()
                    .expect("heat solve")
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("full_extraction_3x3", |b| {
        let geometry = coarse_geometry();
        let config = AlphaConfig {
            ambient: Kelvin(300.0),
            selected: (1, 1),
            powers: vec![Watts(10e-6), Watts(30e-6)],
        };
        b.iter(|| extract_alpha(&geometry, &config).expect("extraction"))
    });

    group.finish();
}

criterion_group!(benches, bench_alpha);
criterion_main!(benches);
