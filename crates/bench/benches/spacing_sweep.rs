//! Benchmarks the Fig. 3b flow: attacks under coupling strengths
//! corresponding to tight and loose electrode spacing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurohammer::attack::{run_attack, AttackConfig};
use neurohammer::pattern::AttackPattern;
use rram_crossbar::{CellAddress, EngineConfig, PulseEngine};
use rram_jart::DeviceParams;
use rram_units::{Seconds, Volts};

fn attack_with_alpha(nearest_alpha: f64) -> u64 {
    let mut engine = PulseEngine::with_uniform_coupling(
        5,
        5,
        DeviceParams::default(),
        nearest_alpha,
        EngineConfig::default(),
    );
    let config = AttackConfig {
        victim: CellAddress::new(2, 1),
        pattern: AttackPattern::SingleAggressor,
        amplitude: Volts(1.05),
        pulse_length: Seconds(100e-9),
        gap: Seconds(100e-9),
        max_pulses: 2_000_000,
        batching: true,
        trace: false,
    };
    run_attack(&mut engine, &config).pulses
}

fn bench_spacing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3b_spacing_as_coupling");
    group.sample_size(10);
    // α ≈ 0.22 corresponds to ~10 nm spacing, 0.15 to ~50 nm (see EXPERIMENTS.md).
    for &(label, alpha) in &[("10nm_like", 0.22_f64), ("50nm_like", 0.15)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &alpha, |b, &alpha| {
            b.iter(|| attack_with_alpha(alpha))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spacing);
criterion_main!(benches);
