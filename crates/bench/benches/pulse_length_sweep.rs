//! Benchmarks single-aggressor hammering campaigns at the pulse lengths of
//! Fig. 3a (synthetic coupling so only the attack engine is measured).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurohammer::attack::{run_attack, AttackConfig};
use neurohammer::pattern::AttackPattern;
use rram_crossbar::{CellAddress, EngineConfig, PulseEngine};
use rram_jart::DeviceParams;
use rram_units::{Seconds, Volts};

fn attack(pulse_ns: f64) -> u64 {
    let mut engine = PulseEngine::with_uniform_coupling(
        5,
        5,
        DeviceParams::default(),
        0.18,
        EngineConfig::default(),
    );
    let config = AttackConfig {
        victim: CellAddress::new(2, 1),
        pattern: AttackPattern::SingleAggressor,
        amplitude: Volts(1.05),
        pulse_length: Seconds(pulse_ns * 1e-9),
        gap: Seconds(pulse_ns * 1e-9),
        max_pulses: 2_000_000,
        batching: true,
        trace: false,
    };
    run_attack(&mut engine, &config).pulses
}

fn bench_pulse_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3a_pulse_length");
    group.sample_size(10);
    for &ns in &[50.0_f64, 100.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ns}ns")),
            &ns,
            |b, &ns| b.iter(|| attack(ns)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pulse_length);
criterion_main!(benches);
