//! Property-based tests for the regression and statistics helpers.

use proptest::prelude::*;
use rram_analysis::regression::{linear_fit, proportional_fit};
use rram_analysis::stats::{geometric_mean, is_monotonic_decreasing, Summary};

proptest! {
    /// A noiseless line is always recovered exactly (up to numerical error).
    #[test]
    fn exact_line_recovery(
        slope in -1e3f64..1e3,
        intercept in -1e3f64..1e3,
        n in 3usize..40,
    ) {
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 + 1.0).collect();
        let y: Vec<f64> = x.iter().map(|v| intercept + slope * v).collect();
        let fit = linear_fit(&x, &y).unwrap();
        let scale = 1.0 + slope.abs() + intercept.abs();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * scale);
        prop_assert!((fit.intercept - intercept).abs() < 1e-6 * scale);
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    /// The fitted line always passes through the centroid of the data.
    #[test]
    fn fit_passes_through_centroid(xs in prop::collection::vec(-100.0f64..100.0, 3..30)) {
        // Build y from a quadratic so the fit is not exact.
        let ys: Vec<f64> = xs.iter().map(|x| 0.3 * x * x - 2.0 * x + 5.0).collect();
        // Need non-degenerate x.
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9));
        let fit = linear_fit(&xs, &ys).unwrap();
        let mean_x = xs.iter().sum::<f64>() / xs.len() as f64;
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        prop_assert!((fit.predict(mean_x) - mean_y).abs() < 1e-6 * (1.0 + mean_y.abs()));
    }

    /// R² is always within [−∞, 1]; for a least-squares fit with intercept it is within [0, 1]
    /// up to numerical noise.
    #[test]
    fn r_squared_bounded(xs in prop::collection::vec(-50.0f64..50.0, 4..30)) {
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, x)| x.sin() * 10.0 + i as f64).collect();
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9));
        let fit = linear_fit(&xs, &ys).unwrap();
        prop_assert!(fit.r_squared <= 1.0 + 1e-9);
        prop_assert!(fit.r_squared >= -1e-6);
    }

    /// Proportional fit of perfectly proportional data recovers the factor.
    #[test]
    fn proportional_recovery(k in 0.01f64..100.0, n in 2usize..20) {
        let x: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| k * v).collect();
        let fit = proportional_fit(&x, &y).unwrap();
        prop_assert!((fit.slope - k).abs() < 1e-9 * k.max(1.0));
    }

    /// Summary statistics bound the data.
    #[test]
    fn summary_bounds(data in prop::collection::vec(-1e4f64..1e4, 1..50)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// The geometric mean is bounded by min and max for positive data.
    #[test]
    fn geometric_mean_bounds(data in prop::collection::vec(0.1f64..1e4, 1..30)) {
        let g = geometric_mean(&data).unwrap();
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    /// A sorted-descending series is always reported as monotonically decreasing.
    #[test]
    fn sorted_series_is_monotonic(mut data in prop::collection::vec(0.0f64..1e6, 0..30)) {
        data.sort_by(|a, b| b.partial_cmp(a).unwrap());
        prop_assert!(is_monotonic_decreasing(&data));
    }
}
