//! A self-contained HTML report with inline SVG charts.
//!
//! The figure binaries (under `--html`) export one single-file report per
//! campaign: sweep charts as inline SVG, the numeric tables behind them,
//! the campaign fingerprint and a deterministic telemetry snapshot. The
//! file embeds everything — no scripts, no external assets, no links — so
//! it survives as a CI artifact or an email attachment unchanged.
//!
//! Rendering is a pure function of the inputs: floats are formatted with
//! fixed precision and every collection is emitted in caller order, so
//! two exports of the same campaign report are byte-identical (the
//! property the `report-smoke` CI job diffs for).

use std::fmt::Write as _;

/// Escapes `&`, `<`, `>` and `"` for HTML text and attribute positions.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// One plotted series of an [`svg_chart`]: a named polyline.
#[derive(Debug, Clone)]
pub struct SvgSeries {
    /// Legend label.
    pub name: String,
    /// `(x, y)` samples in plot order.
    pub points: Vec<(f64, f64)>,
}

/// Muted qualitative palette, cycled per series.
const PALETTE: [&str; 6] = [
    "#2166ac", "#b2182b", "#1b7837", "#e08214", "#762a83", "#35978f",
];

/// Plot geometry shared by the SVG helpers.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 360.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 20.0;
const MARGIN_BOTTOM: f64 = 45.0;

/// Formats a plot coordinate with fixed precision (byte-stable output).
fn coord(value: f64) -> String {
    format!("{value:.2}")
}

/// Maps `value` in `[lo, hi]` onto the horizontal plot range.
fn map_x(value: f64, lo: f64, hi: f64) -> f64 {
    let span = (hi - lo).abs().max(1e-12);
    MARGIN_LEFT + (value - lo) / span * (WIDTH - MARGIN_LEFT - MARGIN_RIGHT)
}

/// Maps `value` in `[lo, hi]` onto the vertical plot range (y grows up).
fn map_y(value: f64, lo: f64, hi: f64) -> f64 {
    let span = (hi - lo).abs().max(1e-12);
    HEIGHT - MARGIN_BOTTOM - (value - lo) / span * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM)
}

/// Human-readable tick label for a (possibly log-scale) axis value.
fn tick_label(value: f64, log: bool) -> String {
    let shown = if log { 10f64.powf(value) } else { value };
    if shown != 0.0 && (shown.abs() >= 1e4 || shown.abs() < 1e-2) {
        format!("{shown:.1e}")
    } else {
        format!("{shown:.3}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

/// Renders an inline SVG line chart of `series`.
///
/// `log_x`/`log_y` plot the base-10 logarithm of the coordinate (points
/// with non-positive values on a log axis are dropped). Returns an empty
/// string when nothing is plottable, so callers can append unconditionally.
pub fn svg_chart(
    series: &[SvgSeries],
    x_label: &str,
    y_label: &str,
    log_x: bool,
    log_y: bool,
) -> String {
    let transformed: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .map(|s| {
            let points = s
                .points
                .iter()
                .filter(|(x, y)| {
                    x.is_finite() && y.is_finite() && (!log_x || *x > 0.0) && (!log_y || *y > 0.0)
                })
                .map(|&(x, y)| {
                    (
                        if log_x { x.log10() } else { x },
                        if log_y { y.log10() } else { y },
                    )
                })
                .collect::<Vec<_>>();
            (s.name.clone(), points)
        })
        .filter(|(_, points)| !points.is_empty())
        .collect();
    if transformed.is_empty() {
        return String::new();
    }
    let all = transformed.iter().flat_map(|(_, p)| p.iter());
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    // Pad a degenerate (single-value) axis so points sit mid-plot.
    if x_hi - x_lo < 1e-12 {
        x_lo -= 0.5;
        x_hi += 0.5;
    }
    if y_hi - y_lo < 1e-12 {
        y_lo -= 0.5;
        y_hi += 0.5;
    }

    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {WIDTH} {HEIGHT}\" \
         width=\"{WIDTH}\" height=\"{HEIGHT}\" role=\"img\">"
    );
    let _ = write!(
        svg,
        "<rect x=\"{}\" y=\"{MARGIN_TOP}\" width=\"{}\" height=\"{}\" \
         fill=\"none\" stroke=\"#888\"/>",
        coord(MARGIN_LEFT),
        coord(WIDTH - MARGIN_LEFT - MARGIN_RIGHT),
        coord(HEIGHT - MARGIN_TOP - MARGIN_BOTTOM),
    );
    // Four ticks per axis, evenly spaced in plot coordinates.
    for tick in 0..=3 {
        let frac = f64::from(tick) / 3.0;
        let xv = x_lo + frac * (x_hi - x_lo);
        let yv = y_lo + frac * (y_hi - y_lo);
        let px = map_x(xv, x_lo, x_hi);
        let py = map_y(yv, y_lo, y_hi);
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\" text-anchor=\"middle\" \
             fill=\"#444\">{}</text>",
            coord(px),
            coord(HEIGHT - MARGIN_BOTTOM + 16.0),
            escape(&tick_label(xv, log_x)),
        );
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\" text-anchor=\"end\" \
             fill=\"#444\">{}</text>",
            coord(MARGIN_LEFT - 6.0),
            coord(py + 4.0),
            escape(&tick_label(yv, log_y)),
        );
    }
    let _ = write!(
        svg,
        "<text x=\"{}\" y=\"{}\" font-size=\"12\" text-anchor=\"middle\" \
         fill=\"#222\">{}</text>",
        coord((MARGIN_LEFT + WIDTH - MARGIN_RIGHT) / 2.0),
        coord(HEIGHT - 8.0),
        escape(x_label),
    );
    let _ = write!(
        svg,
        "<text x=\"14\" y=\"{}\" font-size=\"12\" text-anchor=\"middle\" \
         fill=\"#222\" transform=\"rotate(-90 14 {})\">{}</text>",
        coord((MARGIN_TOP + HEIGHT - MARGIN_BOTTOM) / 2.0),
        coord((MARGIN_TOP + HEIGHT - MARGIN_BOTTOM) / 2.0),
        escape(y_label),
    );
    for (index, (name, points)) in transformed.iter().enumerate() {
        let color = PALETTE[index % PALETTE.len()];
        let path: Vec<String> = points
            .iter()
            .map(|&(x, y)| {
                format!(
                    "{},{}",
                    coord(map_x(x, x_lo, x_hi)),
                    coord(map_y(y, y_lo, y_hi))
                )
            })
            .collect();
        if path.len() > 1 {
            let _ = write!(
                svg,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>",
                path.join(" "),
            );
        }
        for point in &path {
            let (px, py) = point.split_once(',').expect("x,y pair");
            let _ = write!(
                svg,
                "<circle cx=\"{px}\" cy=\"{py}\" r=\"3\" fill=\"{color}\"/>"
            );
        }
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"{color}\">{}</text>",
            coord(MARGIN_LEFT + 8.0),
            coord(MARGIN_TOP + 14.0 + 14.0 * index as f64),
            escape(name),
        );
    }
    svg.push_str("</svg>");
    svg
}

/// One content block of a report section.
#[derive(Debug, Clone)]
enum Block {
    /// Escaped prose paragraph.
    Paragraph(String),
    /// Escaped monospace block (tables, JSON snapshots, raw numbers).
    Preformatted(String),
    /// Trusted raw markup — the inline SVG charts built by this module.
    Raw(String),
    /// Two-column key/value table, escaped.
    KeyValues(Vec<(String, String)>),
}

/// One titled section of an [`HtmlReport`].
#[derive(Debug, Clone)]
struct Section {
    title: String,
    blocks: Vec<Block>,
}

/// Builder for a single-file HTML report.
///
/// # Examples
///
/// ```
/// use rram_analysis::html::HtmlReport;
///
/// let mut report = HtmlReport::new("fig 3a");
/// report.section("Sweep");
/// report.paragraph("Pulses to a bit-flip over pulse length.");
/// report.key_values(&[("points".into(), "14".into())]);
/// let html = report.render();
/// assert!(html.starts_with("<!DOCTYPE html>"));
/// assert!(html.contains("fig 3a"));
/// // Pure builder: rendering twice gives identical bytes.
/// assert_eq!(html, report.render());
/// ```
#[derive(Debug, Clone)]
pub struct HtmlReport {
    title: String,
    sections: Vec<Section>,
}

impl HtmlReport {
    /// An empty report titled `title`.
    pub fn new(title: impl Into<String>) -> HtmlReport {
        HtmlReport {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Starts a new titled section; blocks append to the latest section.
    pub fn section(&mut self, title: impl Into<String>) {
        self.sections.push(Section {
            title: title.into(),
            blocks: Vec::new(),
        });
    }

    fn push(&mut self, block: Block) {
        if self.sections.is_empty() {
            self.section("");
        }
        self.sections
            .last_mut()
            .expect("section exists")
            .blocks
            .push(block);
    }

    /// Appends a prose paragraph (escaped).
    pub fn paragraph(&mut self, text: impl Into<String>) {
        self.push(Block::Paragraph(text.into()));
    }

    /// Appends a monospace block (escaped) — tables, JSON, raw numbers.
    pub fn preformatted(&mut self, text: impl Into<String>) {
        self.push(Block::Preformatted(text.into()));
    }

    /// Appends raw trusted markup, e.g. an [`svg_chart`]. Empty strings
    /// are ignored (charts with nothing plottable render as empty).
    pub fn raw(&mut self, markup: impl Into<String>) {
        let markup = markup.into();
        if !markup.is_empty() {
            self.push(Block::Raw(markup));
        }
    }

    /// Appends a two-column key/value table (escaped).
    pub fn key_values(&mut self, entries: &[(String, String)]) {
        self.push(Block::KeyValues(entries.to_vec()));
    }

    /// Renders the complete single-file document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        let _ = writeln!(out, "<title>{}</title>", escape(&self.title));
        out.push_str(
            "<style>\n\
             body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:60rem;\
             padding:0 1rem;color:#1a1a1a}\n\
             h1{border-bottom:2px solid #ccc;padding-bottom:.3rem}\n\
             h2{margin-top:2rem;border-bottom:1px solid #ddd;padding-bottom:.2rem}\n\
             pre{background:#f6f6f6;padding:.8rem;overflow-x:auto;font-size:.85rem}\n\
             table.kv{border-collapse:collapse;margin:.5rem 0}\n\
             table.kv td{border:1px solid #ddd;padding:.25rem .6rem;font-size:.9rem}\n\
             table.kv td:first-child{background:#f6f6f6;font-weight:600}\n\
             svg{max-width:100%;height:auto}\n\
             </style>\n</head>\n<body>\n",
        );
        let _ = writeln!(out, "<h1>{}</h1>", escape(&self.title));
        for section in &self.sections {
            if !section.title.is_empty() {
                let _ = writeln!(out, "<h2>{}</h2>", escape(&section.title));
            }
            for block in &section.blocks {
                match block {
                    Block::Paragraph(text) => {
                        let _ = writeln!(out, "<p>{}</p>", escape(text));
                    }
                    Block::Preformatted(text) => {
                        let _ = writeln!(out, "<pre>{}</pre>", escape(text));
                    }
                    Block::Raw(markup) => {
                        out.push_str(markup);
                        out.push('\n');
                    }
                    Block::KeyValues(entries) => {
                        out.push_str("<table class=\"kv\">\n");
                        for (key, value) in entries {
                            let _ = writeln!(
                                out,
                                "<tr><td>{}</td><td>{}</td></tr>",
                                escape(key),
                                escape(value),
                            );
                        }
                        out.push_str("</table>\n");
                    }
                }
            }
        }
        out.push_str("</body>\n</html>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_markup_characters() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn chart_plots_log_series() {
        let svg = svg_chart(
            &[SvgSeries {
                name: "5x5".into(),
                points: vec![(10.0, 1e3), (100.0, 1e5)],
            }],
            "pulse length [ns]",
            "pulses to flip",
            true,
            true,
        );
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("pulse length [ns]"));
        // Log ticks label the original decades, not the exponents.
        assert!(svg.contains(">10<") || svg.contains(">1e1<"), "{svg}");
    }

    #[test]
    fn chart_drops_unplottable_points_and_series() {
        // Non-positive values vanish from log axes; an all-bad chart is empty.
        assert_eq!(
            svg_chart(
                &[SvgSeries {
                    name: "bad".into(),
                    points: vec![(0.0, -1.0)],
                }],
                "x",
                "y",
                true,
                true,
            ),
            ""
        );
        let one_good = svg_chart(
            &[SvgSeries {
                name: "mixed".into(),
                points: vec![(1.0, 1.0), (2.0, f64::NAN)],
            }],
            "x",
            "y",
            false,
            false,
        );
        assert!(one_good.contains("circle"));
    }

    #[test]
    fn report_renders_deterministically() {
        let mut report = HtmlReport::new("demo <campaign>");
        report.section("Numbers & charts");
        report.paragraph("A \"quoted\" note.");
        report.preformatted("x | y\n1 | 2");
        report.key_values(&[("fingerprint".into(), "abc123".into())]);
        report.raw(svg_chart(
            &[SvgSeries {
                name: "s".into(),
                points: vec![(1.0, 2.0), (3.0, 4.0)],
            }],
            "x",
            "y",
            false,
            false,
        ));
        report.raw(""); // ignored
        let first = report.render();
        let second = report.render();
        assert_eq!(first, second);
        assert!(first.contains("demo &lt;campaign&gt;"));
        assert!(first.contains("Numbers &amp; charts"));
        assert!(first.contains("&quot;quoted&quot;"));
        assert!(first.contains("<svg "));
        assert!(!first.contains("href=")); // self-contained: no links out
    }

    #[test]
    fn blocks_before_any_section_get_an_anonymous_one() {
        let mut report = HtmlReport::new("t");
        report.paragraph("intro");
        let html = report.render();
        assert!(html.contains("<p>intro</p>"));
    }
}
