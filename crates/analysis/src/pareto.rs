//! Pareto-front extraction for defence/overhead trade-off analysis.
//!
//! A guard sweep produces one `(protection, overhead)` point per guard
//! operating point: protection is to be **maximised** (the probability the
//! attack is blocked), overhead **minimised** (the relative cost the guard
//! imposes on legitimate traffic). The Pareto front is the set of
//! non-dominated points — every sensible tuning choice lies on it, and
//! everything off it is strictly wasteful.

/// Returns `true` when `by` dominates `a`: at least as much protection for
/// at most the overhead, strictly better in at least one coordinate.
///
/// Ties never dominate (two identical points both stay on the front), and
/// any comparison involving a NaN coordinate is treated as incomparable
/// (neither point dominates).
pub fn dominates(by: (f64, f64), a: (f64, f64)) -> bool {
    by.0 >= a.0 && by.1 <= a.1 && (by.0 > a.0 || by.1 < a.1)
}

/// Indices of the non-dominated `(protection, overhead)` points, in input
/// order.
///
/// A point is kept iff no other input point [`dominates`] it: no returned
/// point is dominated by any input, and every dominated input is excluded.
/// Exact duplicates of a non-dominated point are all kept (they are
/// genuinely equivalent tunings), and the returned indices are ascending,
/// so the extraction is deterministic for a deterministic input order.
///
/// The scan is O(n²) — guard grids are tens of points, not millions.
///
/// # Examples
///
/// ```
/// use rram_analysis::pareto::pareto_front_indices;
///
/// // (protection, overhead): maximise the first, minimise the second.
/// let points = [
///     (0.0, 0.00), // undefended baseline: zero overhead, on the front
///     (0.9, 0.05), // strong and cheap: on the front
///     (0.5, 0.10), // dominated by (0.9, 0.05)
///     (1.0, 0.30), // perfect protection at a price: on the front
/// ];
/// assert_eq!(pareto_front_indices(&points), vec![0, 1, 3]);
/// ```
pub fn pareto_front_indices(points: &[(f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().any(|&other| dominates(other, points[i])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hand_computed_front() {
        // Protection up / overhead up staircase with two dominated points.
        let points = [
            (0.10, 0.02), // a: on the front
            (0.10, 0.05), // b: dominated by a (same protection, more cost)
            (0.60, 0.05), // c: on the front
            (0.40, 0.20), // d: dominated by c
            (0.95, 0.20), // e: on the front
            (1.00, 0.90), // f: on the front (most protection of all)
            (0.95, 0.95), // g: dominated by e
        ];
        assert_eq!(pareto_front_indices(&points), vec![0, 2, 4, 5]);
    }

    #[test]
    fn duplicates_and_single_points_survive() {
        assert_eq!(pareto_front_indices(&[]), Vec::<usize>::new());
        assert_eq!(pareto_front_indices(&[(0.5, 0.5)]), vec![0]);
        // Exact ties do not dominate each other.
        assert_eq!(pareto_front_indices(&[(0.5, 0.5), (0.5, 0.5)]), vec![0, 1]);
    }

    #[test]
    fn domination_is_strict_somewhere() {
        assert!(dominates((1.0, 0.0), (0.5, 0.5)));
        assert!(dominates((0.5, 0.4), (0.5, 0.5)));
        assert!(dominates((0.6, 0.5), (0.5, 0.5)));
        assert!(!dominates((0.5, 0.5), (0.5, 0.5)));
        assert!(!dominates((0.4, 0.4), (0.5, 0.3)));
        // NaN coordinates never dominate and are never dominated.
        assert!(!dominates((f64::NAN, 0.0), (0.5, 0.5)));
        assert!(!dominates((1.0, 0.0), (f64::NAN, 0.5)));
    }

    proptest! {
        #[test]
        fn front_is_exactly_the_non_dominated_set(
            raw in proptest::collection::vec((0u64..1000, 0u64..1000), 0..40)
        ) {
            let points: Vec<(f64, f64)> = raw
                .iter()
                .map(|&(p, o)| (p as f64 / 1000.0, o as f64 / 1000.0))
                .collect();
            let front = pareto_front_indices(&points);
            // No returned point is dominated by any input point.
            for &i in &front {
                for &other in &points {
                    prop_assert!(
                        !dominates(other, points[i]),
                        "front point {:?} is dominated by {:?}",
                        points[i],
                        other
                    );
                }
            }
            // Every dominated input is excluded; every non-dominated input
            // is present (the front is *exactly* the non-dominated set).
            for (i, &point) in points.iter().enumerate() {
                let dominated = points.iter().any(|&other| dominates(other, point));
                prop_assert_eq!(
                    front.contains(&i),
                    !dominated,
                    "index {} (point {:?}) classified wrongly",
                    i,
                    point
                );
            }
            // Indices ascend (deterministic order).
            prop_assert!(front.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
