//! Plain-text table rendering for the figure-regeneration binaries.
//!
//! The benchmark harness prints the same rows/series the paper plots; a small
//! monospace table keeps that output readable without pulling in a plotting
//! dependency.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use rram_analysis::Table;
///
/// let mut t = Table::new(vec!["pulse length".into(), "# pulses".into()]);
/// t.push_row(vec!["10 ns".into(), "31400".into()]);
/// t.push_row(vec!["100 ns".into(), "1900".into()]);
/// let text = t.to_string();
/// assert!(text.contains("pulse length"));
/// assert!(text.contains("31400"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_headers(headers: &[&str]) -> Self {
        Table::new(headers.iter().map(|s| s.to_string()).collect())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row length must match header length"
        );
        self.rows.push(row);
    }

    /// Appends a row built from anything displayable.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_display_row<T: fmt::Display>(&mut self, row: &[T]) {
        self.push_row(row.iter().map(|v| v.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, width) in cells.iter().zip(widths.iter()) {
                write!(f, " {cell:<width$} |", width = width)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for width in &widths {
            write!(f, "{:-<w$}|", "", w = width + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::with_headers(&["a", "longer"]);
        t.push_row(vec!["x".into(), "1".into()]);
        t.push_row(vec!["yyyy".into(), "22".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(lines[0].contains("longer"));
    }

    #[test]
    fn push_display_row_formats_values() {
        let mut t = Table::with_headers(&["v", "w"]);
        t.push_display_row(&[1.5, 2.25]);
        assert_eq!(t.rows()[0], vec!["1.5".to_string(), "2.25".to_string()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_panics() {
        let mut t = Table::with_headers(&["only one"]);
        t.push_row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::with_headers(&["h1", "h2"]);
        assert!(t.is_empty());
        let out = t.to_string();
        assert_eq!(out.lines().count(), 2);
    }
}
