//! Quick ASCII charts for terminal inspection of sweep results.
//!
//! The paper's Fig. 3 plots are log-scale bar/line series. A coarse ASCII
//! rendition is enough to eyeball the shape of a reproduced series directly
//! from `cargo run` output without any plotting dependency.

/// Renders a horizontal bar chart with logarithmic bar lengths.
///
/// Each entry is a `(label, value)` pair; values must be strictly positive.
/// Bars are scaled so that the largest value occupies `width` characters and a
/// value one decade smaller is ~`width / decades` characters shorter.
///
/// Returns `None` if `series` is empty, `width` is zero, or any value is not
/// strictly positive/finite.
///
/// # Examples
///
/// ```
/// use rram_analysis::ascii_plot::log_bar_chart;
/// let chart = log_bar_chart(&[("10 ns".into(), 1e4), ("100 ns".into(), 1e3)], 40).unwrap();
/// assert!(chart.lines().count() == 2);
/// ```
pub fn log_bar_chart(series: &[(String, f64)], width: usize) -> Option<String> {
    if series.is_empty() || width == 0 {
        return None;
    }
    if series.iter().any(|(_, v)| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let logs: Vec<f64> = series.iter().map(|(_, v)| v.log10()).collect();
    let max_log = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min_log = logs.iter().cloned().fold(f64::INFINITY, f64::min);
    // Anchor the scale one decade below the minimum so the smallest bar is
    // still visible, and avoid a zero range for constant series.
    let floor = min_log - 1.0;
    let range = (max_log - floor).max(1e-9);

    let label_width = series
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);

    let mut out = String::new();
    for ((label, value), log) in series.iter().zip(logs.iter()) {
        let frac = (log - floor) / range;
        let bars = ((frac * width as f64).round() as usize).max(1);
        out.push_str(&format!(
            "{label:<label_width$} | {} {value:.3e}\n",
            "#".repeat(bars)
        ));
    }
    Some(out)
}

/// Renders a sparkline (single line) of a series using block characters.
///
/// Returns `None` for an empty series or non-finite values. Constant series
/// render as a flat mid-height line.
pub fn sparkline(series: &[f64]) -> Option<String> {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() || series.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let max = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let range = max - min;
    let line: String = series
        .iter()
        .map(|v| {
            let idx = if range == 0.0 {
                3
            } else {
                (((v - min) / range) * 7.0).round() as usize
            };
            BLOCKS[idx.min(7)]
        })
        .collect();
    Some(line)
}

/// Renders a single-line progress bar, e.g. `[#####---------] 5/14 (36%)`.
///
/// Intended for live, carriage-return-overwritten campaign progress: the
/// line has a fixed width for a given `total`, so re-printing it with `\r`
/// cleanly overwrites the previous state. A `total` of zero renders as a
/// full bar (`0/0` — nothing to do is done).
///
/// # Examples
///
/// ```
/// use rram_analysis::ascii_plot::progress_line;
/// assert_eq!(progress_line(1, 4, 8), "[##------] 1/4 (25%)");
/// assert_eq!(progress_line(4, 4, 8), "[########] 4/4 (100%)");
/// ```
pub fn progress_line(done: usize, total: usize, width: usize) -> String {
    let done = done.min(total);
    let fraction = if total == 0 {
        1.0
    } else {
        done as f64 / total as f64
    };
    let filled = (fraction * width as f64).round() as usize;
    format!(
        "[{}{}] {done}/{total} ({:.0}%)",
        "#".repeat(filled),
        "-".repeat(width.saturating_sub(filled)),
        fraction * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_line_tracks_completion() {
        assert_eq!(progress_line(0, 2, 4), "[----] 0/2 (0%)");
        assert_eq!(progress_line(1, 2, 4), "[##--] 1/2 (50%)");
        assert_eq!(progress_line(2, 2, 4), "[####] 2/2 (100%)");
        // Over-counting clamps; an empty campaign is complete.
        assert_eq!(progress_line(3, 2, 4), "[####] 2/2 (100%)");
        assert_eq!(progress_line(0, 0, 4), "[####] 0/0 (100%)");
    }

    #[test]
    fn bar_chart_orders_lengths_by_magnitude() {
        let chart = log_bar_chart(
            &[
                ("small".into(), 1e2),
                ("medium".into(), 1e3),
                ("large".into(), 1e5),
            ],
            30,
        )
        .unwrap();
        let lengths: Vec<usize> = chart
            .lines()
            .map(|l| l.chars().filter(|&c| c == '#').count())
            .collect();
        assert!(lengths[0] < lengths[1]);
        assert!(lengths[1] < lengths[2]);
    }

    #[test]
    fn bar_chart_rejects_bad_input() {
        assert!(log_bar_chart(&[], 20).is_none());
        assert!(log_bar_chart(&[("x".into(), -1.0)], 20).is_none());
        assert!(log_bar_chart(&[("x".into(), 1.0)], 0).is_none());
        assert!(log_bar_chart(&[("x".into(), f64::NAN)], 10).is_none());
    }

    #[test]
    fn bar_chart_constant_series_is_ok() {
        let chart = log_bar_chart(&[("a".into(), 5.0), ("b".into(), 5.0)], 10).unwrap();
        assert_eq!(chart.lines().count(), 2);
    }

    #[test]
    fn sparkline_spans_range() {
        let line = sparkline(&[0.0, 0.5, 1.0]).unwrap();
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
    }

    #[test]
    fn sparkline_handles_constant_and_empty() {
        assert!(sparkline(&[]).is_none());
        let flat = sparkline(&[2.0, 2.0]).unwrap();
        assert_eq!(flat.chars().count(), 2);
    }
}
