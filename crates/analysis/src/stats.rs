//! Summary statistics and log-space helpers for sweep series.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator); zero for a single sample.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (average of the two central samples for even n).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics of `data`.
    ///
    /// Returns `None` for an empty slice or if any sample is not finite.
    pub fn of(data: &[f64]) -> Option<Self> {
        if data.is_empty() || data.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` bounds of the confidence interval for the success
/// probability after observing `successes` out of `trials`, at the normal
/// quantile `z` (1.96 for 95 %). Unlike the naive Wald interval it behaves
/// sensibly at 0 and `trials` successes and for small `trials` — exactly
/// the regime of Monte Carlo flip-probability estimates with a handful of
/// trials per grid point.
///
/// Returns `None` when `trials == 0`, `successes > trials` or `z` is not
/// finite and positive.
///
/// # Examples
///
/// ```
/// use rram_analysis::stats::wilson_interval;
///
/// // 8 flips out of 10 trials, 95 % confidence.
/// let (low, high) = wilson_interval(8, 10, 1.96).unwrap();
/// assert!(low > 0.4 && low < 0.5);
/// assert!(high > 0.9 && high < 1.0);
/// // Zero successes still produce a non-degenerate upper bound.
/// let (low, high) = wilson_interval(0, 10, 1.96).unwrap();
/// assert_eq!(low, 0.0);
/// assert!(high > 0.0 && high < 0.4);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> Option<(f64, f64)> {
    if trials == 0 || successes > trials || !(z > 0.0 && z.is_finite()) {
        return None;
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denominator = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denominator;
    let half = z / denominator * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Some(((centre - half).max(0.0), (centre + half).min(1.0)))
}

/// The `p`-th quantile of a sample, `p ∈ [0, 1]`, with linear interpolation
/// between order statistics (the R-7 / NumPy default: rank `h = (n−1)·p`).
///
/// Returns `None` for an empty sample, a non-finite sample value or `p`
/// outside `[0, 1]`. The input need not be sorted.
///
/// # Examples
///
/// ```
/// use rram_analysis::stats::percentile;
///
/// let pulses = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(percentile(&pulses, 0.0), Some(10.0));
/// assert_eq!(percentile(&pulses, 0.5), Some(25.0));
/// assert_eq!(percentile(&pulses, 1.0), Some(40.0));
/// ```
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    if data.is_empty() || data.iter().any(|v| !v.is_finite()) || !(0.0..=1.0).contains(&p) {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
    let h = (sorted.len() as f64 - 1.0) * p;
    let low = h.floor() as usize;
    let high = h.ceil() as usize;
    if low == high {
        return Some(sorted[low]);
    }
    let fraction = h - low as f64;
    Some(sorted[low] + fraction * (sorted[high] - sorted[low]))
}

/// Geometric mean of strictly positive samples; `None` otherwise.
pub fn geometric_mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() || data.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = data.iter().map(|v| v.ln()).sum();
    Some((log_sum / data.len() as f64).exp())
}

/// Ratio between the first and last element of a series — the "speed-up"
/// convention used when comparing the end points of a sweep (e.g. pulses
/// needed at 10 ns vs. 100 ns pulse length).
///
/// Returns `None` for series shorter than two elements or a zero last element.
pub fn endpoint_ratio(series: &[f64]) -> Option<f64> {
    let (first, last) = (series.first()?, series.last()?);
    if series.len() < 2 || *last == 0.0 {
        return None;
    }
    Some(first / last)
}

/// Returns `true` when the series is monotonically non-increasing.
///
/// Used by the experiment self-checks: all three sweeps of Fig. 3 must show a
/// monotonic decrease of pulses-to-flip as the swept parameter grows
/// (pulse length, 1/spacing, ambient temperature).
pub fn is_monotonic_decreasing(series: &[f64]) -> bool {
    series.windows(2).all(|w| w[1] <= w[0])
}

/// Returns `true` when the series is monotonically non-decreasing.
pub fn is_monotonic_increasing(series: &[f64]) -> bool {
    series.windows(2).all(|w| w[1] >= w[0])
}

/// log10 of every element; `None` if any element is not strictly positive.
pub fn log10_series(series: &[f64]) -> Option<Vec<f64>> {
    if series.iter().any(|&v| !v.is_finite() || v <= 0.0) {
        return None;
    }
    Some(series.iter().map(|v| v.log10()).collect())
}

/// Number of decades spanned by a strictly positive series (max/min in log10).
pub fn decades_spanned(series: &[f64]) -> Option<f64> {
    let logs = log10_series(series)?;
    let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = logs.iter().cloned().fold(f64::INFINITY, f64::min);
    Some(max - min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_even_length_median() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_single_sample_zero_std() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
    }

    #[test]
    fn wilson_interval_matches_hand_computed_values() {
        // 8/10 at z = 1.96: the worked textbook example. By the formula,
        // centre = (0.8 + 1.96²/20) / (1 + 1.96²/10) = 0.71674…,
        // half = 1.96/(1 + 1.96²/10)·√(0.8·0.2/10 + 1.96²/400) = 0.22658…,
        // giving the well-known (0.4902, 0.9433) interval.
        let (low, high) = wilson_interval(8, 10, 1.96).unwrap();
        assert!((low - 0.490_2).abs() < 5e-4, "low = {low}");
        assert!((high - 0.943_3).abs() < 5e-4, "high = {high}");

        // 1/2 at z = 1: centre = (0.5 + 0.25)/1.5 = 0.5,
        // half = (1/1.5)·√(0.125 + 0.0625) = 0.288675…
        let (low, high) = wilson_interval(1, 2, 1.0).unwrap();
        assert!((low - (0.5 - 0.288_675_134_594_812_9)).abs() < 1e-12);
        assert!((high - (0.5 + 0.288_675_134_594_812_9)).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_is_clamped_and_ordered() {
        let (low, high) = wilson_interval(0, 5, 1.96).unwrap();
        assert_eq!(low, 0.0);
        assert!(high > 0.0 && high < 0.6);
        let (low, high) = wilson_interval(5, 5, 1.96).unwrap();
        assert!(low > 0.4 && low < 1.0);
        assert_eq!(high, 1.0);
        assert!(low <= high);
    }

    #[test]
    fn wilson_interval_rejects_degenerate_inputs() {
        assert!(wilson_interval(0, 0, 1.96).is_none());
        assert!(wilson_interval(3, 2, 1.96).is_none());
        assert!(wilson_interval(1, 2, 0.0).is_none());
        assert!(wilson_interval(1, 2, f64::NAN).is_none());
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let data = [40.0, 10.0, 30.0, 20.0]; // unsorted on purpose
        assert_eq!(percentile(&data, 0.0), Some(10.0));
        assert_eq!(percentile(&data, 1.0), Some(40.0));
        assert_eq!(percentile(&data, 0.5), Some(25.0));
        // h = 3·0.25 = 0.75 → 10 + 0.75·(20−10) = 17.5
        assert_eq!(percentile(&data, 0.25), Some(17.5));
        // Five elements: p50 is the exact middle order statistic.
        assert_eq!(percentile(&[5.0, 1.0, 4.0, 2.0, 3.0], 0.5), Some(3.0));
        // Single element: every quantile is that element.
        assert_eq!(percentile(&[7.0], 0.05), Some(7.0));
        assert_eq!(percentile(&[7.0], 0.95), Some(7.0));
    }

    #[test]
    fn percentile_rejects_bad_inputs() {
        assert!(percentile(&[], 0.5).is_none());
        assert!(percentile(&[1.0, f64::NAN], 0.5).is_none());
        assert!(percentile(&[1.0], -0.1).is_none());
        assert!(percentile(&[1.0], 1.1).is_none());
    }

    #[test]
    fn geometric_mean_of_powers_of_ten() {
        let g = geometric_mean(&[10.0, 1000.0]).unwrap();
        assert!((g - 100.0).abs() < 1e-9);
        assert!(geometric_mean(&[1.0, -1.0]).is_none());
        assert!(geometric_mean(&[]).is_none());
    }

    #[test]
    fn monotonicity_checks() {
        assert!(is_monotonic_decreasing(&[5.0, 4.0, 4.0, 1.0]));
        assert!(!is_monotonic_decreasing(&[5.0, 6.0]));
        assert!(is_monotonic_increasing(&[1.0, 1.0, 2.0]));
        assert!(!is_monotonic_increasing(&[2.0, 1.0]));
        assert!(is_monotonic_decreasing(&[]));
        assert!(is_monotonic_decreasing(&[1.0]));
    }

    #[test]
    fn endpoint_ratio_works() {
        assert_eq!(endpoint_ratio(&[100.0, 50.0, 10.0]), Some(10.0));
        assert_eq!(endpoint_ratio(&[1.0]), None);
        assert_eq!(endpoint_ratio(&[1.0, 0.0]), None);
    }

    #[test]
    fn decades_spanned_works() {
        let d = decades_spanned(&[100.0, 1e5]).unwrap();
        assert!((d - 3.0).abs() < 1e-12);
        assert!(decades_spanned(&[1.0, 0.0]).is_none());
    }
}
