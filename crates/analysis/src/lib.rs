//! Regression, statistics and reporting helpers for the NeuroHammer reproduction.
//!
//! The paper extracts its thermal model by *linear regression* of filament
//! temperature against dissipated power (Eq. 3–4) and reports its evaluation
//! as log-scale series of "# pulses to trigger a bit-flip" against swept
//! parameters (Fig. 3). This crate provides those numerical and reporting
//! building blocks:
//!
//! * [`regression`] — ordinary least squares for the `T(P)` fits, including
//!   the coefficient of determination used to check linearity.
//! * [`stats`] — summary statistics and log-space helpers for sweep series.
//! * [`table`] — a plain-text table builder used by the figure-regeneration
//!   binaries to print the same rows the paper plots.
//! * [`pareto`] — non-dominated-set extraction for defence/overhead
//!   trade-off analysis (countermeasure campaigns).
//! * [`report`] — a sectioned report builder combining text, tables and
//!   charts (the output format of the figure binaries and campaign runs).
//! * [`ascii_plot`] — quick semi-log ASCII charts for terminal inspection.
//! * [`tui`] — a progressive pure-ANSI campaign dashboard redrawn live as
//!   sweep points finish (the `--tui` mode of the figure binaries).
//! * [`html`] — a self-contained HTML report with inline SVG charts (the
//!   `--html` mode of the figure binaries), byte-reproducible per spec.
//! * [`csv`] — minimal CSV writing (no external dependency) so results can be
//!   post-processed.
//!
//! # Examples
//!
//! ```
//! use rram_analysis::regression::linear_fit;
//!
//! // T = 300 + 1.5e5 * P, recovered from noisy-free samples.
//! let power = [1e-4, 2e-4, 3e-4, 4e-4];
//! let temp: Vec<f64> = power.iter().map(|p| 300.0 + 1.5e5 * p).collect();
//! let fit = linear_fit(&power, &temp).unwrap();
//! assert!((fit.slope - 1.5e5).abs() < 1.0);
//! assert!((fit.intercept - 300.0).abs() < 1e-6);
//! assert!(fit.r_squared > 0.999_999);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod ascii_plot;
pub mod csv;
pub mod html;
pub mod pareto;
pub mod regression;
pub mod report;
pub mod stats;
pub mod table;
pub mod tui;

pub use pareto::{dominates, pareto_front_indices};
pub use regression::{linear_fit, FitError, LinearFit};
pub use report::Report;
pub use stats::Summary;
pub use table::Table;
