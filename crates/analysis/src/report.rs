//! Sectioned plain-text reports.
//!
//! The figure-regeneration binaries print a title, then one section per
//! series/variant, each containing free text, tables and ASCII charts. This
//! module provides the small structured builder behind that output so every
//! binary renders the same way (and so campaign reports can be rendered
//! without each binary reinventing the layout).

use std::fmt;

/// A titled report made of headed sections of text blocks.
///
/// # Examples
///
/// ```
/// use rram_analysis::report::Report;
///
/// let mut report = Report::new("Fig. 3a — pulse length");
/// report.section("50 ns pulses").push("| pulse | ... |");
/// let text = report.to_string();
/// assert!(text.starts_with("# Fig. 3a"));
/// assert!(text.contains("## 50 ns pulses"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    title: String,
    sections: Vec<(String, Vec<String>)>,
}

impl Report {
    /// Creates an empty report with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Starts a new section and returns `self` for chaining.
    pub fn section(&mut self, heading: impl Into<String>) -> &mut Self {
        self.sections.push((heading.into(), Vec::new()));
        self
    }

    /// Appends a text block (a table, a chart, a sentence) to the current
    /// section; opens an untitled section if none exists yet.
    pub fn push(&mut self, block: impl Into<String>) -> &mut Self {
        if self.sections.is_empty() {
            self.sections.push((String::new(), Vec::new()));
        }
        let (_, blocks) = self.sections.last_mut().expect("section exists");
        blocks.push(block.into());
        self
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Returns `true` when the report has no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.title)?;
        for (heading, blocks) in &self.sections {
            if !heading.is_empty() {
                writeln!(f, "\n## {heading}")?;
            }
            for block in blocks {
                writeln!(f, "{}", block.trim_end())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_sections_and_blocks() {
        let mut report = Report::new("T");
        report.section("A").push("block 1").push("block 2");
        report.section("B").push("block 3");
        let text = report.to_string();
        let expected = "# T\n\n## A\nblock 1\nblock 2\n\n## B\nblock 3\n";
        assert_eq!(text, expected);
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
    }

    #[test]
    fn push_without_a_section_opens_an_untitled_one() {
        let mut report = Report::new("T");
        report.push("free text");
        assert_eq!(report.to_string(), "# T\nfree text\n");
    }
}
