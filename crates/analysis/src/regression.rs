//! Ordinary least-squares linear regression.
//!
//! The crosstalk-coefficient extraction (Eq. 3–4 of the paper) fits
//! `T_ij(P_LRS) = T0 + R_th · α_ij · P_LRS` for every cell of the crossbar.
//! The fits are one-dimensional, so a closed-form least-squares solution is
//! all that is needed.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Result of a one-dimensional linear least-squares fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (R²) of the fit; `1.0` for a perfect fit.
    pub r_squared: f64,
    /// Number of samples the fit used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Returns the residual `y - predict(x)` for a sample.
    #[inline]
    pub fn residual(&self, x: f64, y: f64) -> f64 {
        y - self.predict(x)
    }
}

/// Errors produced by [`linear_fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two samples were provided.
    TooFewSamples {
        /// Number of samples that were provided.
        provided: usize,
    },
    /// The `x` and `y` slices have different lengths.
    LengthMismatch {
        /// Length of the `x` slice.
        x_len: usize,
        /// Length of the `y` slice.
        y_len: usize,
    },
    /// All `x` values are identical, so the slope is not defined.
    DegenerateX,
    /// A non-finite sample value was encountered.
    NonFiniteSample,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples { provided } => {
                write!(f, "linear fit needs at least 2 samples, got {provided}")
            }
            FitError::LengthMismatch { x_len, y_len } => {
                write!(f, "x and y have different lengths ({x_len} vs {y_len})")
            }
            FitError::DegenerateX => write!(f, "all x values are identical"),
            FitError::NonFiniteSample => write!(f, "encountered a non-finite sample"),
        }
    }
}

impl Error for FitError {}

/// Fits `y = intercept + slope·x` by ordinary least squares.
///
/// # Errors
///
/// Returns an error when fewer than two samples are given, when the slices
/// have different lengths, when every `x` is identical, or when any sample is
/// not finite.
///
/// # Examples
///
/// ```
/// use rram_analysis::regression::linear_fit;
/// let fit = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0])?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// # Ok::<(), rram_analysis::regression::FitError>(())
/// ```
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinearFit, FitError> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(FitError::TooFewSamples { provided: x.len() });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(FitError::NonFiniteSample);
    }

    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;

    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }

    if sxx == 0.0 {
        return Err(FitError::DegenerateX);
    }

    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    // R² = 1 - SS_res / SS_tot. When the response is constant the fit is exact
    // (slope explains all of nothing), report 1.0 instead of 0/0.
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        let ss_res: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(&xi, &yi)| {
                let e = yi - (intercept + slope * xi);
                e * e
            })
            .sum();
        1.0 - ss_res / syy
    };

    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
        n: x.len(),
    })
}

/// Fits `y = slope·x` (regression through the origin).
///
/// Used when the physical model forces a zero intercept, e.g. fitting the
/// *additional* temperature rise of a neighbour cell against dissipated power.
///
/// # Errors
///
/// Same conditions as [`linear_fit`].
pub fn proportional_fit(x: &[f64], y: &[f64]) -> Result<LinearFit, FitError> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    if x.is_empty() {
        return Err(FitError::TooFewSamples { provided: 0 });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(FitError::NonFiniteSample);
    }
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    if sxx == 0.0 {
        return Err(FitError::DegenerateX);
    }
    let sxy: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
    let slope = sxy / sxx;

    let mean_y = y.iter().sum::<f64>() / y.len() as f64;
    let syy: f64 = y.iter().map(|v| (v - mean_y) * (v - mean_y)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y.iter())
        .map(|(&xi, &yi)| {
            let e = yi - slope * xi;
            e * e
        })
        .sum();
    let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };

    Ok(LinearFit {
        slope,
        intercept: 0.0,
        r_squared,
        n: x.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 7.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.n, 5);
    }

    #[test]
    fn noisy_line_has_reasonable_r_squared() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert_eq!(
            linear_fit(&[1.0, 2.0], &[1.0]),
            Err(FitError::LengthMismatch { x_len: 2, y_len: 1 })
        );
    }

    #[test]
    fn too_few_samples_error() {
        assert_eq!(
            linear_fit(&[1.0], &[1.0]),
            Err(FitError::TooFewSamples { provided: 1 })
        );
    }

    #[test]
    fn degenerate_x_error() {
        assert_eq!(
            linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(FitError::DegenerateX)
        );
    }

    #[test]
    fn non_finite_sample_error() {
        assert_eq!(
            linear_fit(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(FitError::NonFiniteSample)
        );
    }

    #[test]
    fn constant_y_has_unit_r_squared() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert!((fit.slope).abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn proportional_fit_recovers_slope() {
        let x = [1.0, 2.0, 4.0];
        let y = [0.5, 1.0, 2.0];
        let fit = proportional_fit(&x, &y).unwrap();
        assert!((fit.slope - 0.5).abs() < 1e-12);
        assert_eq!(fit.intercept, 0.0);
    }

    #[test]
    fn predict_and_residual() {
        let fit = linear_fit(&[0.0, 1.0], &[1.0, 2.0]).unwrap();
        assert!((fit.predict(3.0) - 4.0).abs() < 1e-12);
        assert!((fit.residual(3.0, 4.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_display_is_informative() {
        let msg = format!("{}", FitError::DegenerateX);
        assert!(msg.contains("identical"));
    }
}
