//! A progressive pure-ANSI campaign dashboard.
//!
//! The figure binaries (under `--tui`) and the remote event follower
//! redraw one [`Dashboard`] as campaign events land: a progress/throughput
//! header, a sparkline per sweep series, the defence Pareto front so far,
//! and fleet status lines when following a sharded job remotely.
//!
//! The crate is deliberately ignorant of campaign types: callers translate
//! their events into the neutral [`TuiEvent`]/[`TuiPoint`] form. Rendering
//! is split in two layers so frames are testable byte for byte:
//!
//! * [`Dashboard::frame`] is a **pure** function of the accumulated state,
//!   the width and the caller-supplied elapsed time — no ANSI, no clock,
//!   no terminal probing. Golden-frame tests pin its output.
//! * [`Dashboard::ansi_frame`] wraps a frame in the cursor-home/clear
//!   control codes that turn repeated prints into an in-place redraw.

use std::collections::BTreeMap;

use crate::ascii_plot::{progress_line, sparkline};
use crate::pareto::pareto_front_indices;

/// One finished sweep point, translated for display.
#[derive(Debug, Clone)]
pub struct TuiPoint {
    /// Series the point belongs to (one sparkline per distinct value).
    pub series: String,
    /// Sweep coordinate — series points are plotted in ascending `x`.
    pub x: f64,
    /// Human-readable label of the sweep coordinate (`"10 ns"`).
    pub label: String,
    /// Pulses to the first victim flip; `None` when the budget ran out.
    pub pulses: Option<u64>,
    /// Whether the victim flipped at this point.
    pub flipped: bool,
    /// Defence coordinates, when the point was guarded:
    /// `(guard label, protection ∈ {0, 1}, overhead fraction)`.
    pub pareto: Option<(String, f64, f64)>,
    /// Wall-clock duration of the point, when known.
    pub wall_ns: Option<u64>,
}

/// One campaign event, translated for display.
#[derive(Debug, Clone)]
pub enum TuiEvent {
    /// The campaign announced its grid size.
    Started {
        /// Points in the (sharded) grid.
        total: usize,
    },
    /// One point finished.
    Point(TuiPoint),
    /// The campaign completed.
    Finished,
    /// Replace the fleet/shard status lines (remote follower only).
    Status(Vec<String>),
    /// Replace a named time-series trend (one sparkline panel per name;
    /// the fleet follower feeds these from `GET /metrics/history`).
    Trend {
        /// Panel label, e.g. `"points/s"`.
        name: String,
        /// Most recent samples, oldest first.
        values: Vec<f64>,
    },
}

/// Accumulated per-series display state.
#[derive(Debug, Clone, Default)]
struct SeriesState {
    /// `(x, pulses)` pairs, kept sorted by `x`.
    points: Vec<(f64, Option<u64>)>,
    flipped: usize,
    last_label: String,
    last_pulses: Option<u64>,
}

/// Running aggregate of one guard's defence outcomes.
#[derive(Debug, Clone, Default)]
struct GuardState {
    points: usize,
    protection_sum: f64,
    overhead_sum: f64,
}

/// The progressive campaign dashboard. Feed it [`TuiEvent`]s with
/// [`Dashboard::on_event`] and render with [`Dashboard::frame`] (pure) or
/// [`Dashboard::ansi_frame`] (in-place terminal redraw).
///
/// # Examples
///
/// ```
/// use rram_analysis::tui::{Dashboard, TuiEvent, TuiPoint};
///
/// let mut dash = Dashboard::new("fig 3a");
/// dash.on_event(&TuiEvent::Started { total: 2 });
/// dash.on_event(&TuiEvent::Point(TuiPoint {
///     series: "5x5".into(),
///     x: 10.0,
///     label: "10 ns".into(),
///     pulses: Some(31_000),
///     flipped: true,
///     pareto: None,
///     wall_ns: None,
/// }));
/// let frame = dash.frame(72, 2.0);
/// assert!(frame.contains("fig 3a"));
/// assert!(frame.contains("1/2"));
/// ```
#[derive(Debug, Clone)]
pub struct Dashboard {
    title: String,
    total: usize,
    done: usize,
    finished: bool,
    series: BTreeMap<String, SeriesState>,
    guards: BTreeMap<String, GuardState>,
    trends: BTreeMap<String, Vec<f64>>,
    status: Vec<String>,
    drawn: bool,
}

impl Dashboard {
    /// An empty dashboard titled `title`.
    pub fn new(title: impl Into<String>) -> Dashboard {
        Dashboard {
            title: title.into(),
            total: 0,
            done: 0,
            finished: false,
            series: BTreeMap::new(),
            guards: BTreeMap::new(),
            trends: BTreeMap::new(),
            status: Vec::new(),
            drawn: false,
        }
    }

    /// Folds one event into the display state.
    pub fn on_event(&mut self, event: &TuiEvent) {
        match event {
            TuiEvent::Started { total } => self.total = *total,
            TuiEvent::Point(point) => {
                self.done += 1;
                let series = self.series.entry(point.series.clone()).or_default();
                let at = series.points.partition_point(|&(x, _)| x <= point.x);
                series.points.insert(at, (point.x, point.pulses));
                if point.flipped {
                    series.flipped += 1;
                }
                series.last_label = point.label.clone();
                series.last_pulses = point.pulses;
                if let Some((guard, protection, overhead)) = &point.pareto {
                    let state = self.guards.entry(guard.clone()).or_default();
                    state.points += 1;
                    state.protection_sum += protection;
                    state.overhead_sum += overhead;
                }
            }
            TuiEvent::Finished => self.finished = true,
            TuiEvent::Status(lines) => self.status = lines.clone(),
            TuiEvent::Trend { name, values } => {
                self.trends.insert(name.clone(), values.clone());
            }
        }
    }

    /// Points folded in so far.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Whether a `Finished` event has landed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Renders the dashboard as plain text — no ANSI codes, no clock.
    /// `elapsed_secs` drives the throughput figure; passing it in keeps
    /// the render a pure function (golden-frame tests pin exact bytes).
    pub fn frame(&self, width: usize, elapsed_secs: f64) -> String {
        let width = width.max(24);
        let mut out = String::new();
        out.push_str(&truncate(&format!("== {} ==", self.title), width));
        out.push('\n');
        let rate = if elapsed_secs > 0.0 {
            self.done as f64 / elapsed_secs
        } else {
            0.0
        };
        out.push_str(&truncate(
            &format!(
                "{} · {rate:.1} pts/s · {elapsed_secs:.1} s",
                progress_line(self.done, self.total.max(self.done), 20)
            ),
            width,
        ));
        out.push('\n');

        for (name, series) in &self.series {
            out.push_str(&truncate(&format!("» {name}"), width));
            out.push('\n');
            let flips: Vec<f64> = series
                .points
                .iter()
                .filter_map(|&(_, pulses)| pulses.map(|p| (p.max(1) as f64).log10()))
                .collect();
            let misses = series.points.len() - flips.len();
            let line = sparkline(&flips).unwrap_or_else(|| "(no flips yet)".into());
            let mut summary = format!(
                "  {line} · {}/{} flipped",
                series.flipped,
                series.points.len()
            );
            if misses > 0 {
                summary.push_str(&format!(" · {misses} over budget"));
            }
            out.push_str(&truncate(&summary, width));
            out.push('\n');
            let last = match series.last_pulses {
                Some(pulses) => format!("  last {} → {pulses} pulses", series.last_label),
                None => format!("  last {} → no flip within budget", series.last_label),
            };
            out.push_str(&truncate(&last, width));
            out.push('\n');
        }

        if !self.guards.is_empty() {
            out.push_str(&truncate(
                "» defence front (P(block) vs overhead; * = on front)",
                width,
            ));
            out.push('\n');
            let rows: Vec<(&String, f64, f64)> = self
                .guards
                .iter()
                .map(|(name, g)| {
                    let n = g.points.max(1) as f64;
                    (name, g.protection_sum / n, g.overhead_sum / n)
                })
                .collect();
            let coordinates: Vec<(f64, f64)> = rows.iter().map(|&(_, p, o)| (p, o)).collect();
            let front = pareto_front_indices(&coordinates);
            for (index, (name, protection, overhead)) in rows.iter().enumerate() {
                let marker = if front.contains(&index) { '*' } else { ' ' };
                out.push_str(&truncate(
                    &format!("  {marker} {name} · P={protection:.3} · ovh={overhead:.4}"),
                    width,
                ));
                out.push('\n');
            }
        }

        if !self.trends.is_empty() {
            out.push_str(&truncate("» trends", width));
            out.push('\n');
            for (name, values) in &self.trends {
                // One sparkline character per sample: keep the newest
                // samples that fit the width budget, so a narrow terminal
                // shows the recent past rather than a clipped ancient one.
                let budget = width.saturating_sub(name.chars().count() + 16).clamp(8, 60);
                let tail = &values[values.len().saturating_sub(budget)..];
                let spark = sparkline(tail).unwrap_or_else(|| "(no samples)".into());
                let line = match values.last() {
                    Some(last) => format!("  {name} {spark} · now {last:.1}"),
                    None => format!("  {name} (no samples)"),
                };
                out.push_str(&truncate(&line, width));
                out.push('\n');
            }
        }

        if !self.status.is_empty() {
            out.push_str(&truncate("» fleet", width));
            out.push('\n');
            for line in &self.status {
                out.push_str(&truncate(&format!("  {line}"), width));
                out.push('\n');
            }
        }

        if self.finished {
            out.push_str(&truncate("campaign finished", width));
            out.push('\n');
        }
        out
    }

    /// Renders a frame wrapped in ANSI control codes for an in-place
    /// redraw: the first call clears the screen, later calls re-home the
    /// cursor and clear whatever the shorter new frame leaves behind.
    /// Print the result to the terminal verbatim (no added newline).
    pub fn ansi_frame(&mut self, width: usize, elapsed_secs: f64) -> String {
        let body = self.frame(width, elapsed_secs);
        let prefix = if self.drawn {
            "\x1b[H"
        } else {
            self.drawn = true;
            "\x1b[2J\x1b[H"
        };
        format!("{prefix}{body}\x1b[0J")
    }
}

/// Clips a line to `width` characters, marking the cut with `…`.
fn truncate(line: &str, width: usize) -> String {
    let count = line.chars().count();
    if count <= width {
        return line.to_string();
    }
    let mut out: String = line.chars().take(width.saturating_sub(1)).collect();
    out.push('…');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(series: &str, x: f64, pulses: Option<u64>) -> TuiEvent {
        TuiEvent::Point(TuiPoint {
            series: series.into(),
            x,
            label: format!("{x:.0} ns"),
            pulses,
            flipped: pulses.is_some(),
            pareto: None,
            wall_ns: None,
        })
    }

    #[test]
    fn golden_empty_frame() {
        let dash = Dashboard::new("demo");
        assert_eq!(
            dash.frame(60, 0.0),
            "== demo ==\n[####################] 0/0 (100%) · 0.0 pts/s · 0.0 s\n"
        );
    }

    #[test]
    fn golden_sweep_frame() {
        let mut dash = Dashboard::new("fig 3a");
        dash.on_event(&TuiEvent::Started { total: 4 });
        // Out-of-order arrival: x = 100 lands before x = 10.
        dash.on_event(&point("5x5", 100.0, Some(100_000)));
        dash.on_event(&point("5x5", 10.0, Some(1_000)));
        dash.on_event(&point("5x5", 1000.0, None));
        assert_eq!(
            dash.frame(72, 2.0),
            "== fig 3a ==\n\
             [###############-----] 3/4 (75%) · 1.5 pts/s · 2.0 s\n\
             » 5x5\n\
             \x20 ▁█ · 2/3 flipped · 1 over budget\n\
             \x20 last 1000 ns → no flip within budget\n"
        );
    }

    #[test]
    fn golden_finished_frame_with_defense_and_status() {
        let mut dash = Dashboard::new("defense");
        dash.on_event(&TuiEvent::Started { total: 2 });
        for (guard, protection, overhead) in
            [("refresh n=32", 1.0, 0.02), ("throttle 1 µs", 0.0, 0.05)]
        {
            dash.on_event(&TuiEvent::Point(TuiPoint {
                series: "guards".into(),
                x: overhead,
                label: guard.into(),
                pulses: None,
                flipped: false,
                pareto: Some((guard.into(), protection, overhead)),
                wall_ns: Some(1),
            }));
        }
        dash.on_event(&TuiEvent::Status(vec!["shard 0/2: done".into()]));
        dash.on_event(&TuiEvent::Finished);
        let frame = dash.frame(72, 4.0);
        assert!(frame.contains("» defence front"), "{frame}");
        // The blocking guard dominates; the non-blocking, costlier one
        // stays off the front.
        assert!(
            frame.contains("* refresh n=32 · P=1.000 · ovh=0.0200"),
            "{frame}"
        );
        assert!(
            frame.contains("  throttle 1 µs · P=0.000 · ovh=0.0500"),
            "{frame}"
        );
        assert!(frame.contains("» fleet\n  shard 0/2: done"), "{frame}");
        assert!(frame.ends_with("campaign finished\n"), "{frame}");
    }

    #[test]
    fn ansi_frames_clear_then_rehome() {
        let mut dash = Dashboard::new("x");
        let first = dash.ansi_frame(40, 0.0);
        assert!(first.starts_with("\x1b[2J\x1b[H"));
        assert!(first.ends_with("\x1b[0J"));
        let second = dash.ansi_frame(40, 1.0);
        assert!(second.starts_with("\x1b[H"));
        assert!(!second.contains("\x1b[2J"));
    }

    #[test]
    fn golden_trend_panel() {
        let mut dash = Dashboard::new("fleet");
        dash.on_event(&TuiEvent::Trend {
            name: "points/s".into(),
            values: vec![0.0, 1.0, 2.0, 4.0],
        });
        // A later Trend event replaces the series, never appends.
        dash.on_event(&TuiEvent::Trend {
            name: "points/s".into(),
            values: vec![0.0, 1.0, 2.0, 4.0, 2.0],
        });
        assert_eq!(
            dash.frame(60, 1.0),
            "== fleet ==\n\
             [####################] 0/0 (100%) · 0.0 pts/s · 1.0 s\n\
             » trends\n\
             \x20 points/s ▁▃▅█▅ · now 2.0\n"
        );
    }

    #[test]
    fn golden_narrow_frame_degrades_gracefully() {
        let mut dash = Dashboard::new("a very long campaign title");
        dash.on_event(&TuiEvent::Started { total: 4 });
        dash.on_event(&point("32x32 checkerboard", 10.0, Some(1_000)));
        dash.on_event(&TuiEvent::Trend {
            name: "points/s".into(),
            values: (0..40).map(|i| i as f64).collect(),
        });
        dash.on_event(&TuiEvent::Status(vec![
            "shard 0/2: leased to worker-a".into()
        ]));
        let frame = dash.frame(28, 2.0);
        assert_eq!(
            frame,
            "== a very long campaign tit…\n\
             [#####---------------] 1/4 …\n\
             » 32x32 checkerboard\n\
             \x20 ▄ · 1/1 flipped\n\
             \x20 last 10 ns → 1000 pulses\n\
             » trends\n\
             \x20 points/s ▁▂▃▄▅▆▇█ · now 3…\n\
             » fleet\n\
             \x20 shard 0/2: leased to work…\n"
        );
        for line in frame.lines() {
            assert!(line.chars().count() <= 28, "{line:?}");
        }
        // Below the floor the frame clamps to 24 columns rather than
        // collapsing to nothing.
        for line in dash.frame(1, 2.0).lines() {
            assert!(line.chars().count() <= 24, "{line:?}");
        }
    }

    #[test]
    fn long_lines_are_clipped() {
        assert_eq!(truncate("abcdef", 6), "abcdef");
        assert_eq!(truncate("abcdefg", 6), "abcde…");
        let mut dash = Dashboard::new("t".repeat(100));
        dash.on_event(&TuiEvent::Started { total: 1 });
        for line in dash.frame(30, 0.0).lines() {
            assert!(line.chars().count() <= 30, "{line:?}");
        }
    }
}
