//! Minimal CSV writing so experiment results can be post-processed.
//!
//! Only the subset of CSV required for numeric result tables is implemented
//! (comma separation, quoting of fields containing commas/quotes/newlines);
//! this keeps the workspace inside the allowed dependency set.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escapes a single CSV field, quoting it when necessary.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialises a header plus rows into a CSV string.
///
/// # Examples
///
/// ```
/// use rram_analysis::csv::to_csv_string;
/// let s = to_csv_string(&["a", "b"], &[vec!["1".into(), "2".into()]]);
/// assert_eq!(s, "a,b\n1,2\n");
/// ```
pub fn to_csv_string(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let header_line: Vec<String> = headers.iter().map(|h| escape(h)).collect();
    let _ = writeln!(out, "{}", header_line.join(","));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Writes a CSV file to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv_file(
    path: &Path,
    headers: &[&str],
    rows: &[Vec<String>],
) -> Result<(), io::Error> {
    std::fs::write(path, to_csv_string(headers, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_rows_round_trip() {
        let s = to_csv_string(
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(s, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn fields_with_commas_and_quotes_are_escaped() {
        let s = to_csv_string(
            &["label"],
            &[vec!["a,b".into()], vec!["he said \"hi\"".into()]],
        );
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn write_and_read_back_file() {
        let dir = std::env::temp_dir().join("rram_analysis_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv_file(&path, &["a"], &[vec!["1".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\n1\n");
        std::fs::remove_file(&path).ok();
    }
}
